"""Tests for the ALS search pipeline (repro.search)."""

import numpy as np

from repro.algorithms import strassen
from repro.core import tensor as tz
from repro.search.als import AlsOptions, als
from repro.search.driver import SearchOutcome, save_outcome, search
from repro.search.sparsify import (
    discretize,
    normalize_columns,
    round_to_grid,
    sign_sweep,
)


class TestAlsBasics:
    def test_recovers_random_low_rank_tensor(self):
        """Sanity: ALS fits an exactly rank-3 random tensor."""
        rng = np.random.default_rng(0)
        U = rng.standard_normal((4, 3))
        V = rng.standard_normal((5, 3))
        W = rng.standard_normal((3, 3))
        T = tz.tensor_from_factors(U, V, W)
        res = als(T, 3, rng=1, options=AlsOptions(
            max_sweeps=1500, attract=False, reg_init=1e-4, reg_final=1e-13))
        assert res.rel_residual < 1e-8

    def test_overparametrized_rank_converges(self):
        T = tz.matmul_tensor(2, 2, 2)
        res = als(T, 8, rng=0, options=AlsOptions(
            max_sweeps=1800, attract=False, reg_init=1e-3, reg_final=1e-13))
        assert res.rel_residual < 1e-9  # classical rank is 8: exact fit exists

    def test_underparametrized_rank_plateaus(self):
        """Rank below border rank cannot converge -- residual stays large."""
        T = tz.matmul_tensor(2, 2, 2)
        res = als(T, 4, rng=0, options=AlsOptions(max_sweeps=300))
        assert res.rel_residual > 1e-2
        assert not res.converged

    def test_init_is_respected(self):
        s = strassen()
        T = tz.matmul_tensor(2, 2, 2)
        res = als(T, 7, init=(s.U, s.V, s.W),
                  options=AlsOptions(max_sweeps=5, attract=False,
                                     reg_init=1e-12, reg_final=1e-12))
        # already at the solution: must stay there (regularization adds a
        # tiny bias, so require "very exact", not the convergence flag)
        assert res.rel_residual < 1e-10

    def test_strassen_rank_found_from_known_seed(self):
        """Start 10 of the library seed stream converges for <2,2,2> at rank
        7 (calibrated during development; deterministic by construction)."""
        from repro.util.rng import spawn_rngs

        T = tz.matmul_tensor(2, 2, 2)
        g = spawn_rngs(12, seed=42)[10]
        r1 = als(T, 7, rng=g, options=AlsOptions(max_sweeps=1200))
        r2 = als(T, 7, rng=g, options=AlsOptions(
            max_sweeps=800, attract=False, reg_init=1e-6, reg_final=1e-12,
            stall_sweeps=400), init=(r1.U, r1.V, r1.W))
        assert r2.rel_residual < 1e-9


class TestSparsify:
    def test_normalize_columns_preserves_tensor(self):
        rng = np.random.default_rng(5)
        s = strassen()
        # scramble scales, then renormalize
        dx = rng.uniform(0.5, 2.0, 7)
        dy = rng.uniform(0.5, 2.0, 7)
        U = s.U * dx
        V = s.V * dy
        W = s.W / (dx * dy)
        Un, Vn, Wn = normalize_columns(U, V, W)
        T = tz.matmul_tensor(2, 2, 2)
        assert tz.residual(T, Un, Vn, Wn) < 1e-10
        # and entries are back on the +-1 grid
        assert np.allclose(np.abs(Un)[np.abs(Un) > 1e-12], 1.0)

    def test_round_to_grid(self):
        X = np.array([[0.001, 0.499], [-0.97, 2.04]])
        R = round_to_grid(X, grid=(0.0, 0.5, 1.0, 2.0))
        np.testing.assert_array_equal(R, [[0.0, 0.5], [-1.0, 2.0]])

    def test_discretize_recovers_strassen_from_noise(self):
        s = strassen()
        rng = np.random.default_rng(11)
        U = s.U + 1e-4 * rng.standard_normal(s.U.shape)
        V = s.V + 1e-4 * rng.standard_normal(s.V.shape)
        W = s.W + 1e-4 * rng.standard_normal(s.W.shape)
        T = tz.matmul_tensor(2, 2, 2)
        trip = discretize(T, U, V, W)
        assert trip is not None
        assert tz.residual(T, *trip) < 1e-12

    def test_discretize_rejects_garbage(self):
        rng = np.random.default_rng(3)
        T = tz.matmul_tensor(2, 2, 2)
        trip = discretize(
            T,
            rng.standard_normal((4, 7)),
            rng.standard_normal((4, 7)),
            rng.standard_normal((4, 7)),
        )
        assert trip is None

    def test_sign_sweep_fixes_flipped_column(self):
        s = strassen()
        U = np.array(s.U); V = np.array(s.V)
        U[:, 3] *= -1.0
        V[:, 3] *= -1.0  # (-u)(-v)w = uvw: still exact; sweep must accept
        T = tz.matmul_tensor(2, 2, 2)
        trip = sign_sweep(T, U, V, s.W)
        assert trip is not None

    def test_sign_sweep_rank_guard(self):
        T = tz.matmul_tensor(2, 2, 2)
        big = np.zeros((4, 20))
        assert sign_sweep(T, big, big, big, max_terms=12) is None


class TestDriver:
    def test_search_smoke_trivial_rank(self):
        """<1,2,1> at rank 2 (classical rank): any start converges fast."""
        out = search(1, 2, 1, 2, starts=3, seed=0,
                     options=AlsOptions(max_sweeps=300))
        assert out is not None
        assert out.rel_residual < 1e-8

    def test_search_deadline_respected(self):
        out = search(3, 3, 3, 22, starts=10_000, seed=0, deadline_s=3.0,
                     options=AlsOptions(max_sweeps=200))
        # must return quickly with the best-so-far (non-convergent target)
        assert out is None or out.rel_residual > 0

    def test_outcome_roundtrip(self, tmp_path):
        out = search(1, 1, 2, 2, starts=2, seed=1,
                     options=AlsOptions(max_sweeps=200))
        path = tmp_path / "x.json"
        save_outcome(out, path)
        from repro.core.algorithm import FastAlgorithm

        alg = FastAlgorithm.load(path)
        assert alg.base_case == (1, 1, 2)
        assert alg.rank == 2

    def test_outcome_dict_fields(self):
        out = SearchOutcome(2, 2, 2, 7, np.ones((4, 7)), np.ones((4, 7)),
                            np.ones((4, 7)), 0.5, False, False, 3, 9)
        d = out.to_dict()
        assert d["rank"] == 7 and d["seed"] == 9 and d["apa"] is True
