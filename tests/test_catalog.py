"""Tests for the algorithm registry (repro.algorithms.catalog)."""

import pytest

from repro.algorithms import by_base_case, get_algorithm, table2
from repro.algorithms.catalog import PAPER_TABLE2, PAPER_TABLE2_APA, refresh_cache


class TestGetAlgorithm:
    @pytest.mark.parametrize("name,base,rank", [
        ("strassen", (2, 2, 2), 7),
        ("winograd", (2, 2, 2), 7),
        ("hk223", (2, 2, 3), 11),
        ("hk224", (2, 2, 4), 14),
        ("hk225", (2, 2, 5), 18),
        ("classical232", (2, 3, 2), 12),
    ])
    def test_named(self, name, base, rank):
        alg = get_algorithm(name)
        assert alg.base_case == base
        assert alg.rank == rank

    def test_permutation_names(self):
        assert get_algorithm("s424").base_case == (4, 2, 4)
        assert get_algorithm("s432").base_case == (4, 3, 2)
        assert get_algorithm("s522").base_case == (5, 2, 2)
        assert get_algorithm("s633").base_case == (6, 3, 3)

    def test_permutation_rank_preserved(self):
        assert get_algorithm("s424").rank == get_algorithm("s244").rank

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("not-an-algorithm")

    def test_bad_classical_name(self):
        with pytest.raises(KeyError):
            get_algorithm("classical22")

    def test_caching_returns_same_object(self):
        assert get_algorithm("strassen") is get_algorithm("strassen")

    def test_refresh_cache(self):
        a = get_algorithm("strassen")
        refresh_cache()
        b = get_algorithm("strassen")
        assert a is not b
        assert a.rank == b.rank


class TestByBaseCase:
    def test_exact_base(self):
        alg = by_base_case(2, 3, 3)
        assert alg.base_case == (2, 3, 3)
        assert alg.rank == 15

    def test_permuted_base(self):
        alg = by_base_case(3, 3, 2)
        assert alg.base_case == (3, 3, 2)
        assert alg.rank == 15

    def test_falls_back_to_classical(self):
        alg = by_base_case(7, 7, 7)
        assert alg.rank == 343

    def test_apa_excluded_by_default(self):
        alg = by_base_case(3, 2, 2)
        assert not alg.apa
        assert alg.rank == 11  # exact <2,2,3> permutation, not Bini's 10

    def test_apa_included_on_request(self):
        alg = by_base_case(3, 2, 2, include_apa=True)
        assert alg.rank == 10  # Bini-rank APA wins on rank

    def test_picks_minimum_rank(self):
        # <2,2,2>: strassen (7) must beat winograd only on tie... both 7;
        # ensure rank is 7 and not the classical 8
        assert by_base_case(2, 2, 2).rank == 7


class TestTable2:
    def test_all_rows_valid(self):
        rows = table2()
        assert len(rows) >= 12
        for e in rows:
            assert e.rank >= 1
            if not e.apa:
                assert e.rank <= e.classical_rank

    def test_paper_rank_achieved_for_searched(self):
        """Every base case our search campaign solved must sit at the
        paper's Table-2 rank."""
        achieved = {e.base_case: e for e in table2() if not e.apa}
        for bc in [(2, 2, 2), (2, 2, 3), (2, 2, 4), (2, 2, 5),
                   (2, 3, 3), (2, 3, 4), (2, 4, 4), (3, 3, 3)]:
            assert achieved[bc].rank == PAPER_TABLE2[bc][0], bc

    def test_fallback_ranks_close_to_paper(self):
        """Composed fallbacks may exceed the paper rank, but only modestly
        (documented in EXPERIMENTS.md)."""
        for e in table2():
            if e.paper_rank is not None and not e.apa:
                assert e.rank <= e.paper_rank + 6

    def test_speedup_column_consistent(self):
        for e in table2():
            expected = e.classical_rank / e.rank - 1.0
            assert e.speedup_per_step == pytest.approx(expected)

    def test_provenance_values(self):
        provs = {e.provenance for e in table2()}
        assert "literal (paper)" in provs
        assert "ALS search (this repo)" in provs

    def test_paper_tables_complete(self):
        assert len(PAPER_TABLE2) == 11
        assert PAPER_TABLE2_APA[(3, 2, 2)] == 10
