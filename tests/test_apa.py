"""Tests for APA machinery (repro.core.apa) and the APA catalog entries."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.core import apa
from repro.core import tensor as tz
from repro.util.matrices import random_matrix


class TestOptimalLambda:
    def test_sqrt_eps(self):
        lam = apa.optimal_lambda()
        assert lam == pytest.approx(np.sqrt(np.finfo(np.float64).eps))

    def test_custom_eps(self):
        assert apa.optimal_lambda(1e-8) == pytest.approx(1e-4)


class TestLaurentMachinery:
    def test_eval_poly(self):
        p = {0: np.array([[1.0]]), -1: np.array([[2.0]]), 1: np.array([[3.0]])}
        v = apa.eval_poly(p, 0.5)
        assert v[0, 0] == pytest.approx(1.0 + 2.0 / 0.5 + 3.0 * 0.5)

    def test_eval_poly_empty(self):
        with pytest.raises(ValueError):
            apa.eval_poly({}, 0.5)

    def test_w_state_border_rank(self):
        """The rank-2 Laurent decomposition converges O(lambda) to the
        rank-3 W-state tensor: the canonical APA phenomenon."""
        T = apa.w_state_tensor()
        Up, Vp, Wp = apa.w_state_apa_factors()
        lams = [1e-1, 1e-2, 1e-3]
        residuals = []
        for lam in lams:
            U = apa.eval_poly(Up, lam)
            V = apa.eval_poly(Vp, lam)
            W = apa.eval_poly(Wp, lam)
            residuals.append(tz.residual(T, U, V, W))
        # linear decay in lambda
        assert residuals[1] / residuals[0] == pytest.approx(0.1, rel=0.3)
        assert residuals[2] / residuals[1] == pytest.approx(0.1, rel=0.3)

    def test_w_state_entries_blow_up(self):
        _, _, Wp = apa.w_state_apa_factors()
        w_small = apa.eval_poly(Wp, 1e-6)
        assert np.abs(w_small).max() > 1e5

    def test_laurent_algorithm_at(self):
        """A trivially exact 'APA' (no negative powers) instantiates fine."""
        from repro.algorithms import strassen

        s = strassen()
        la = apa.LaurentAlgorithm(
            2, 2, 2, {0: s.U}, {0: s.V}, {0: s.W}, name="strassen-as-apa"
        )
        assert la.rank == 7
        inst = la.at(1e-3)
        assert inst.apa
        assert inst.check_exact()

    def test_laurent_at_invalid_lambda(self):
        from repro.algorithms import strassen

        s = strassen()
        la = apa.LaurentAlgorithm(2, 2, 2, {0: s.U}, {0: s.V}, {0: s.W})
        with pytest.raises(ValueError):
            la.at(0.0)

    def test_residual_curve_monotone(self):
        from repro.algorithms import strassen

        s = strassen()
        la = apa.LaurentAlgorithm(2, 2, 2, {0: s.U, 1: 0.1 * np.ones_like(s.U)},
                                  {0: s.V}, {0: s.W})
        curve = la.residual_curve([1e-1, 1e-2, 1e-3])
        assert curve[0] > curve[1] > curve[2]


class TestErrorModel:
    def test_error_grows_with_steps(self):
        assert apa.apa_error_model(1e-4, 2) > apa.apa_error_model(1e-4, 1)

    def test_optimal_lambda_near_minimum(self):
        lam_opt = apa.optimal_lambda()
        e_opt = apa.apa_error_model(lam_opt, 1)
        assert e_opt <= apa.apa_error_model(lam_opt * 100, 1)
        assert e_opt <= apa.apa_error_model(lam_opt / 100, 1)


class TestApaCatalogEntries:
    @pytest.mark.parametrize("name,rank", [("bini322", 10), ("schonhage333", 21)])
    def test_ranks(self, name, rank):
        alg = get_algorithm(name)
        assert alg.rank == rank
        assert alg.apa

    def test_bini_is_approximate_but_useful(self):
        """Bini-rank multiplication: result close to A @ B but far from
        machine precision (the numerical price of APA, Sections 2.2.3/5.1)."""
        from repro.codegen import compile_algorithm

        alg = get_algorithm("bini322")
        f = compile_algorithm(alg)
        A = random_matrix(30, 20, 0)
        B = random_matrix(20, 20, 1)
        rel = np.linalg.norm(f(A, B, steps=1) - A @ B) / np.linalg.norm(A @ B)
        assert 1e-13 < rel < 0.2

    def test_apa_error_compounds_with_recursion(self):
        from repro.codegen import compile_algorithm

        alg = get_algorithm("bini322")
        f = compile_algorithm(alg)
        A = random_matrix(36, 24, 2)
        B = random_matrix(24, 24, 3)
        ref = A @ B
        e1 = np.linalg.norm(f(A, B, steps=1) - ref)
        e2 = np.linalg.norm(f(A, B, steps=2) - ref)
        assert e2 >= 0.5 * e1  # deeper recursion never materially better
