"""Tests for the literal and data-file algorithms: Strassen, Winograd,
classical, and the ALS-discovered coefficient files."""

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen, winograd
from repro.core import tensor as tz
from tests.conftest import catalog_names


class TestStrassen:
    def test_exact(self):
        strassen().validate()

    def test_m1_is_a11_plus_a22_times_b11_plus_b22(self):
        s = strassen()
        np.testing.assert_array_equal(s.U[:, 0], [1, 0, 0, 1])
        np.testing.assert_array_equal(s.V[:, 0], [1, 0, 0, 1])

    def test_c11_combination(self):
        # C11 = M1 + M4 - M5 + M7
        s = strassen()
        np.testing.assert_array_equal(s.W[0], [1, 0, 0, 1, -1, 0, 1])

    def test_multiplies_2x2_symbolically(self):
        s = strassen()
        rng = np.random.default_rng(7)
        A = rng.standard_normal((2, 2))
        B = rng.standard_normal((2, 2))
        sv = s.U.T @ tz.vec(A)
        tv = s.V.T @ tz.vec(B)
        c = s.W @ (sv * tv)
        np.testing.assert_allclose(tz.unvec(c, 2, 2), A @ B, atol=1e-12)


class TestWinograd:
    def test_exact(self):
        winograd().validate()

    def test_rank_7(self):
        assert winograd().rank == 7

    def test_additive_structure(self):
        """Winograd trades Strassen's balanced nnz for fewer raw additions
        after CSE; its raw nnz is higher but the CSE pass recovers the
        15-addition form (checked in test_cse)."""
        w = winograd()
        nu, nv, nw = w.nnz()
        assert nu + nv + nw > 36 - 1  # denser raw factors than Strassen


class TestClassical:
    @pytest.mark.parametrize("mkn", [(1, 1, 1), (2, 2, 2), (2, 3, 4), (4, 2, 3)])
    def test_exact_and_full_rank(self, mkn):
        alg = classical(*mkn)
        alg.validate()
        assert alg.rank == mkn[0] * mkn[1] * mkn[2]

    def test_factors_are_unit_columns(self):
        alg = classical(2, 3, 2)
        assert set(np.unique(alg.U)) <= {0.0, 1.0}
        assert (np.count_nonzero(alg.U, axis=0) == 1).all()
        assert (np.count_nonzero(alg.V, axis=0) == 1).all()
        assert (np.count_nonzero(alg.W, axis=0) == 1).all()


class TestDiscoveredAlgorithms:
    """The coefficient files produced by our search campaign must be exact
    and at the paper's Table-2 ranks."""

    @pytest.mark.parametrize(
        "name,base,rank",
        [
            ("s233", (2, 3, 3), 15),
            ("s234", (2, 3, 4), 20),
            ("s244", (2, 4, 4), 26),
            ("s333", (3, 3, 3), 23),
        ],
    )
    def test_paper_rank_exact(self, name, base, rank):
        alg = get_algorithm(name)
        assert alg.base_case == base
        assert alg.rank == rank
        assert not alg.apa
        alg.validate()

    def test_s333_is_discrete(self):
        """Our Laderman-rank algorithm has integer entries."""
        alg = get_algorithm("s333")
        for F in (alg.U, alg.V, alg.W):
            np.testing.assert_array_equal(F, np.round(F))

    def test_hk_ranks(self):
        assert get_algorithm("hk223").rank == 11
        assert get_algorithm("hk224").rank == 14
        assert get_algorithm("hk225").rank == 18

    def test_whole_catalog_validates(self):
        for name in catalog_names():
            alg = get_algorithm(name)
            if not alg.apa:
                alg.validate()
