"""Tests for result rendering (repro.bench.report)."""

import pytest

from repro.bench.report import (
    Series,
    ascii_plot,
    from_csv,
    rows_to_series,
    speedup_table,
    to_csv,
)
from repro.bench.runner import ResultRow


def _rows():
    return [
        ResultRow("dgemm", "512x512x512", 512, 0.010, 26.8, ""),
        ResultRow("dgemm", "1024x1024x1024", 1024, 0.080, 26.8, ""),
        ResultRow("strassen", "512x512x512", 512, 0.012, 22.4, "steps=1"),
        ResultRow("strassen", "1024x1024x1024", 1024, 0.070, 30.7, "steps=2"),
    ]


class TestSeries:
    def test_rows_to_series_grouping(self):
        series = rows_to_series(_rows())
        names = {s.name for s in series}
        assert names == {"dgemm", "strassen"}
        for s in series:
            assert s.xs == [512.0, 1024.0]

    def test_series_sorted_by_x(self):
        rows = list(reversed(_rows()))
        series = rows_to_series(rows)
        for s in series:
            assert s.xs == sorted(s.xs)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1.0])


class TestAsciiPlot:
    def test_plot_contains_legend_and_title(self):
        txt = ascii_plot(rows_to_series(_rows()), title="Figure X")
        assert "Figure X" in txt
        assert "o=dgemm" in txt or "o=strassen" in txt
        assert "eff. GFLOPS" in txt

    def test_plot_empty(self):
        assert ascii_plot([]) == "(no data)"

    def test_plot_single_point(self):
        txt = ascii_plot([Series("a", [100.0], [5.0])])
        assert "a" in txt

    def test_plot_dimensions(self):
        txt = ascii_plot(rows_to_series(_rows()), width=40, height=8)
        # 8 grid rows + borders + header lines
        assert len(txt.splitlines()) >= 10


class TestCsv:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "rows.csv"
        to_csv(_rows(), p)
        back = from_csv(p)
        assert len(back) == 4
        assert back[0].algorithm == "dgemm"
        assert back[3].gflops == pytest.approx(30.7)

    def test_csv_header(self):
        text = to_csv(_rows())
        assert text.splitlines()[0] == "algorithm,workload,n,seconds,gflops,detail"


class TestSpeedupTable:
    def test_values(self):
        txt = speedup_table(_rows(), baseline="dgemm")
        # strassen at 1024: 0.080 / 0.070 ~= 1.143
        assert "1.143" in txt

    def test_missing_baseline_workload_skipped(self):
        rows = _rows() + [ResultRow("strassen", "2048x...", 2048, 1.0, 1.0, "")]
        txt = speedup_table(rows, baseline="dgemm")
        assert "2048x..." not in txt
