"""Tests for scheduler tracing (repro.parallel.trace)."""

import time

import numpy as np
import pytest

from repro.algorithms import strassen
from repro.parallel import multiply_parallel
from repro.parallel.trace import TaskEvent, Trace, TracedPool
from repro.util.matrices import random_matrix


class TestTraceMath:
    def _trace(self):
        return Trace([
            TaskEvent("w0", "leaf", 0.0, 2.0),
            TaskEvent("w0", "leaf", 2.0, 3.0),
            TaskEvent("w1", "leaf", 0.0, 1.0),
            TaskEvent("w1", "add", 1.0, 1.5),
        ])

    def test_per_worker_busy(self):
        busy = self._trace().per_worker_busy()
        assert busy["w0"] == pytest.approx(3.0)
        assert busy["w1"] == pytest.approx(1.5)

    def test_imbalance(self):
        # mean busy = 2.25, max = 3.0
        assert self._trace().imbalance() == pytest.approx(3.0 / 2.25)

    def test_imbalance_empty(self):
        assert Trace().imbalance() == 1.0

    def test_makespan(self):
        assert self._trace().makespan() == pytest.approx(3.0)

    def test_total_task_time(self):
        assert self._trace().total_task_time() == pytest.approx(4.5)

    def test_label_filter(self):
        t = self._trace().by_label_prefix("add")
        assert len(t.events) == 1


class TestTracedPool:
    def test_records_events(self):
        with TracedPool(2) as pool:
            pool.label("unit")
            pool.map_wait(lambda x: time.sleep(0.01), range(4))
            assert len(pool.trace.events) == 4
            assert all(e.label == "unit" for e in pool.trace.events)
            assert all(e.duration >= 0.005 for e in pool.trace.events)

    def test_clear(self):
        with TracedPool(1) as pool:
            pool.map_wait(lambda x: x, [1])
            pool.trace.clear()
            assert not pool.trace.events

    def test_results_unaffected(self):
        with TracedPool(2) as pool:
            assert pool.map_wait(lambda x: x + 1, range(5)) == [1, 2, 3, 4, 5]

    def test_multiply_parallel_through_traced_pool(self):
        A = random_matrix(64, 64, 0)
        with TracedPool(2) as pool:
            C = multiply_parallel(A, A, strassen(), steps=1, scheme="bfs",
                                  pool=pool)
            np.testing.assert_allclose(C, A @ A, atol=1e-10)
            # 7 S/T-formation tasks + 7 leaf tasks + combine task(s)
            assert len(pool.trace.events) >= 14

    def test_bfs_leaf_count_visible(self):
        A = random_matrix(64, 64, 1)
        with TracedPool(2) as pool:
            multiply_parallel(A, A, strassen(), steps=2, scheme="bfs",
                              pool=pool)
            # 7 + 49 formation tasks, 49 leaves, 8 combines
            assert len(pool.trace.events) >= 100


class TestDegenerateTraces:
    def test_single_worker_imbalance_is_perfect(self):
        t = Trace([TaskEvent("w0", "leaf", 0.0, 2.0),
                   TaskEvent("w0", "leaf", 2.0, 5.0)])
        assert t.imbalance() == 1.0

    def test_zero_duration_tasks(self):
        t = Trace([TaskEvent("w0", "leaf", 1.0, 1.0),
                   TaskEvent("w1", "leaf", 2.0, 2.0)])
        assert t.imbalance() == 1.0

    def test_empty_per_worker_busy(self):
        assert Trace().per_worker_busy() == {}


class TestObsIntegration:
    """TracedPool events are the same stream the telemetry registry sees."""

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro import obs

        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_events_feed_registry_when_enabled(self):
        from repro import obs

        obs.enable()
        with TracedPool(2) as pool:
            pool.label("unit")
            pool.map_wait(lambda x: time.sleep(0.005), range(4))
        stats = obs.span_stats("task.unit")
        assert stats["count"] == 4
        # the registry's per-label total matches the trace's own view
        busy = sum(pool.trace.per_worker_busy().values())
        assert stats["total_s"] == pytest.approx(busy, rel=1e-6)
        # per-worker counters partition the same 4 events
        total_events = sum(
            c["value"] for c in obs.snapshot()["counters"]
            if c["name"] == "task.events"
        )
        assert total_events == 4

    def test_registry_untouched_when_disabled(self):
        from repro import obs

        with TracedPool(2) as pool:
            pool.label("unit")
            pool.map_wait(lambda x: x, range(4))
        assert len(pool.trace.events) == 4  # trace still works standalone
        assert obs.span_stats("task.unit") is None
        assert obs.is_empty()
