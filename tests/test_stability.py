"""Tests for the numerical-stability module (repro.core.stability)."""

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen
from repro.core.stability import (
    ErrorMeasurement,
    diagonal_rescale_for_stability,
    measure_error_growth,
    rank_by_stability,
    stability_factors,
)


class TestFactors:
    def test_classical_baseline(self):
        f = stability_factors(classical(2, 2, 2))
        assert f.alpha == 1.0 and f.beta == 1.0
        assert f.gamma == 2.0  # each output sums K=2 products
        assert f.emax == 2.0

    def test_strassen_larger_than_classical(self):
        fs = stability_factors(strassen())
        fc = stability_factors(classical(2, 2, 2))
        assert fs.emax > fc.emax  # the well-known stability price

    def test_growth_compounds(self):
        f = stability_factors(strassen())
        assert f.growth(2) == pytest.approx(f.emax ** 2)

    def test_apa_factors_blow_up(self):
        """APA factors carry 1/lambda-scale entries: enormous emax."""
        f_apa = stability_factors(get_algorithm("bini322"))
        f_exact = stability_factors(get_algorithm("hk223"))
        assert f_apa.emax > 2 * f_exact.emax


class TestMeasurement:
    def test_exact_algorithm_stays_near_eps(self):
        m = measure_error_growth(strassen(), n=64, steps=(0, 1, 2), seed=1)
        assert all(e < 1e-12 for e in m.rel_errors)

    def test_error_grows_with_depth(self):
        m = measure_error_growth(strassen(), n=64, steps=(0, 3), seed=2)
        assert m.rel_errors[1] >= m.rel_errors[0]

    def test_apa_error_dominates(self):
        exact = measure_error_growth(get_algorithm("s333"), n=54, steps=(1,))
        apa = measure_error_growth(get_algorithm("bini322"), n=54, steps=(1,))
        assert apa.rel_errors[0] > 100 * exact.rel_errors[0]

    def test_float32_floor(self):
        """Single precision: error ~1e-7, far better than our APA entries --
        the paper's 'just use float32 instead of APA' remark."""
        m32 = measure_error_growth(strassen(), n=64, steps=(1,), dtype=np.float32)
        apa = measure_error_growth(get_algorithm("bini322"), n=64, steps=(1,))
        assert 1e-8 < m32.rel_errors[0] < 1e-5
        assert m32.rel_errors[0] < apa.rel_errors[0]

    def test_growth_per_step_metric(self):
        m = ErrorMeasurement("x", [0, 1, 2], [1e-16, 2e-16, 4e-16])
        assert m.growth_per_step == pytest.approx(2.0)

    def test_growth_per_step_single_point(self):
        assert ErrorMeasurement("x", [1], [1e-15]).growth_per_step == 1.0


class TestRescaling:
    def test_rescale_preserves_exactness(self):
        alg = get_algorithm("s244")
        eq = diagonal_rescale_for_stability(alg)
        eq.validate()
        assert eq.rank == alg.rank

    def test_rescale_balances_norms(self):
        alg = get_algorithm("s244")
        eq = diagonal_rescale_for_stability(alg)
        for r in range(eq.rank):
            nu = np.linalg.norm(eq.U[:, r], 1)
            nv = np.linalg.norm(eq.V[:, r], 1)
            nw = np.linalg.norm(eq.W[:, r], 1)
            assert max(nu, nv, nw) / min(nu, nv, nw) < 1.0001

    def test_rescale_does_not_hurt_error(self):
        alg = get_algorithm("s244")
        eq = diagonal_rescale_for_stability(alg)
        m_raw = measure_error_growth(alg, n=64, steps=(2,), seed=3)
        m_eq = measure_error_growth(eq, n=64, steps=(2,), seed=3)
        assert m_eq.rel_errors[0] < 10 * m_raw.rel_errors[0]


class TestRanking:
    def test_rank_by_stability_sorted(self):
        algs = {
            "classical": classical(2, 2, 2),
            "strassen": strassen(),
            "bini": get_algorithm("bini322"),
        }
        ranked = rank_by_stability(algs)
        names = [n for n, _ in ranked]
        assert names[0] == "classical"
        assert names[-1] == "bini"
        scores = [s for _, s in ranked]
        assert scores == sorted(scores)
