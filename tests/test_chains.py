"""Tests for addition-chain extraction (repro.codegen.chains)."""

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen
from repro.codegen.chains import Chain, Term, extract_chains


class TestExtraction:
    def test_strassen_chain_counts(self):
        prog = extract_chains(strassen())
        assert len(prog.s_chains) == 7
        assert len(prog.t_chains) == 7
        assert len(prog.c_chains) == 4

    def test_strassen_s1_terms(self):
        prog = extract_chains(strassen())
        s1 = prog.s_chains[0]
        assert {(t.coeff, t.source) for t in s1.terms} == {(1.0, "A0"), (1.0, "A3")}

    def test_aliases_detected(self):
        prog = extract_chains(strassen())
        # S3 = A11, S4 = A22, T2 = B11, T5 = B22
        assert prog.s_chains[2].is_alias()
        assert prog.s_chains[3].is_alias()
        assert prog.t_chains[1].is_alias()
        assert prog.t_chains[4].is_alias()

    def test_additions_count_strassen(self):
        """Strassen: 4+4 two-term chains on each side -> 8 additions per
        side... precisely nnz - R = 5 per side, plus 8 for C."""
        prog = extract_chains(strassen())
        assert sum(c.additions for c in prog.s_chains) == 12 - 7
        assert sum(c.additions for c in prog.t_chains) == 12 - 7
        assert sum(c.additions for c in prog.c_chains) == 12 - 4
        assert prog.total_additions == 5 + 5 + 8
        assert prog.st_additions == 10

    def test_classical_additions(self):
        """Classical <2,2,2>: no S/T additions, and the four C additions of
        Section 2.1 (C11 = M1 + M2, ...)."""
        prog = extract_chains(classical(2, 2, 2))
        assert prog.st_additions == 0
        assert prog.total_additions == 4


class TestScalarPiping:
    def test_piping_folds_scalars_into_w(self):
        """A column with U = 2*e_i, V = e_j must become aliases with W
        scaled by 2."""
        from repro.core.algorithm import FastAlgorithm

        base = classical(1, 1, 1)
        alg = FastAlgorithm(1, 1, 1, 2.0 * base.U, base.V, 0.5 * base.W, name="scaled")
        alg.validate()
        prog = extract_chains(alg, pipe_scalars=True)
        assert prog.s_chains[0].is_alias()
        assert prog.W_effective[0, 0] == pytest.approx(1.0)

    def test_no_piping_keeps_scalar(self):
        from repro.core.algorithm import FastAlgorithm

        base = classical(1, 1, 1)
        alg = FastAlgorithm(1, 1, 1, 2.0 * base.U, base.V, 0.5 * base.W, name="scaled")
        prog = extract_chains(alg, pipe_scalars=False)
        assert not prog.s_chains[0].is_alias()
        assert prog.W_effective[0, 0] == pytest.approx(0.5)

    def test_piping_preserves_semantics(self):
        """Evaluate the chain program symbolically for a piped algorithm and
        compare against the raw factors."""
        alg = get_algorithm("bini322")  # APA factors have non-unit scalars
        prog = extract_chains(alg, pipe_scalars=True)
        rng = np.random.default_rng(0)
        a = rng.standard_normal(alg.m * alg.k)
        b = rng.standard_normal(alg.k * alg.n)

        def eval_chain(ch, env):
            return sum(t.coeff * env[t.source] for t in ch.terms)

        env = {f"A{i}": a[i] for i in range(a.size)}
        env.update({f"B{i}": b[i] for i in range(b.size)})
        s = np.array([eval_chain(c, env) for c in prog.s_chains])
        t = np.array([eval_chain(c, env) for c in prog.t_chains])
        c_piped = prog.W_effective @ (s * t)
        c_raw = alg.W @ ((alg.U.T @ a) * (alg.V.T @ b))
        np.testing.assert_allclose(c_piped, c_raw, atol=1e-10)


class TestChainDataclasses:
    def test_chain_additions(self):
        ch = Chain("S0", [Term(1.0, "A0"), Term(-1.0, "A1"), Term(0.5, "A2")])
        assert ch.additions == 2

    def test_empty_chain_additions(self):
        assert Chain("S0", []).additions == 0

    def test_alias_requires_unit_coeff(self):
        assert Chain("S0", [Term(1.0, "A0")]).is_alias()
        assert not Chain("S0", [Term(2.0, "A0")]).is_alias()
