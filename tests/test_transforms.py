"""Tests for Props. 2.1-2.3 transforms (repro.core.transforms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import classical, get_algorithm, strassen
from repro.core import transforms as tf


class TestVecTranspose:
    def test_small_case(self):
        A = np.arange(6.0).reshape(2, 3)
        P = tf.vec_transpose_permutation(2, 3)
        np.testing.assert_array_equal(P @ A.reshape(-1), A.T.reshape(-1))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_property(self, r, c):
        rng = np.random.default_rng(r * 10 + c)
        A = rng.standard_normal((r, c))
        P = tf.vec_transpose_permutation(r, c)
        np.testing.assert_allclose(P @ A.reshape(-1), A.T.reshape(-1))

    def test_is_permutation_matrix(self):
        P = tf.vec_transpose_permutation(3, 4)
        assert (P.sum(axis=0) == 1).all() and (P.sum(axis=1) == 1).all()


class TestPermutations:
    def test_swap_mn_dims(self):
        alg = classical(2, 3, 4)
        t = tf.swap_mn(alg)
        assert t.base_case == (4, 3, 2)
        t.validate()

    def test_rotate_dims(self):
        alg = classical(2, 3, 4)
        t = tf.rotate(alg)
        assert t.base_case == (4, 2, 3)
        t.validate()

    def test_rank_preserved(self):
        s = get_algorithm("s244")
        assert tf.swap_mn(s).rank == s.rank
        assert tf.rotate(s).rank == s.rank

    def test_family_has_six_members_distinct_dims(self):
        fam = tf.permutation_family(classical(2, 3, 4))
        assert len(fam) == 6
        for alg in fam.values():
            alg.validate()

    def test_family_collapses_on_repeats(self):
        fam = tf.permutation_family(strassen())
        assert set(fam) == {(2, 2, 2)}
        fam = tf.permutation_family(get_algorithm("hk223"))
        assert set(fam) == {(2, 2, 3), (2, 3, 2), (3, 2, 2)}

    def test_permute_to(self):
        alg = tf.permute_to(get_algorithm("s244"), 4, 2, 4)
        assert alg.base_case == (4, 2, 4)
        assert alg.rank == 26
        alg.validate()

    def test_permute_to_invalid(self):
        with pytest.raises(ValueError, match="not a permutation"):
            tf.permute_to(strassen(), 2, 2, 3)

    def test_double_swap_is_identity_dims(self):
        alg = classical(2, 3, 4)
        back = tf.swap_mn(tf.swap_mn(alg))
        assert back.base_case == alg.base_case
        back.validate()

    def test_rotate_three_times_identity_dims(self):
        alg = classical(2, 3, 4)
        r3 = tf.rotate(tf.rotate(tf.rotate(alg)))
        assert r3.base_case == alg.base_case
        r3.validate()


class TestIsotropy:
    """Prop. 2.3: transformations within a fixed base case."""

    def test_permute_columns(self):
        s = strassen()
        perm = np.array([6, 5, 4, 3, 2, 1, 0])
        t = tf.permute_columns(s, perm)
        t.validate()
        np.testing.assert_array_equal(t.U[:, 0], s.U[:, 6])

    def test_permute_columns_invalid(self):
        with pytest.raises(ValueError):
            tf.permute_columns(strassen(), np.array([0, 0, 1, 2, 3, 4, 5]))

    def test_scale_columns_exact(self):
        s = strassen()
        rng = np.random.default_rng(3)
        dx = rng.uniform(0.5, 2.0, 7)
        dy = rng.uniform(0.5, 2.0, 7)
        t = tf.scale_columns(s, dx, dy)
        t.validate()

    def test_scale_columns_zero_rejected(self):
        dx = np.ones(7); dx[3] = 0.0
        with pytest.raises(ValueError, match="nonsingular"):
            tf.scale_columns(strassen(), dx, np.ones(7))

    def test_scale_columns_shape_rejected(self):
        with pytest.raises(ValueError):
            tf.scale_columns(strassen(), np.ones(6), np.ones(7))

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_basis_transform_preserves_exactness(self, seed):
        rng = np.random.default_rng(seed)
        s = get_algorithm("s233")
        m, k, n = s.base_case
        # well-conditioned random transforms
        X = np.eye(m) + 0.3 * rng.standard_normal((m, m))
        Y = np.eye(k) + 0.3 * rng.standard_normal((k, k))
        Z = np.eye(n) + 0.3 * rng.standard_normal((n, n))
        t = tf.basis_transform(s, X, Y, Z)
        assert t.residual() < 1e-8

    def test_basis_transform_shape_check(self):
        with pytest.raises(ValueError):
            tf.basis_transform(strassen(), np.eye(3), np.eye(2), np.eye(2))

    def test_basis_transform_identity_is_noop(self):
        s = strassen()
        t = tf.basis_transform(s, np.eye(2), np.eye(2), np.eye(2))
        np.testing.assert_allclose(t.U, s.U, atol=1e-12)
        np.testing.assert_allclose(t.V, s.V, atol=1e-12)
        np.testing.assert_allclose(t.W, s.W, atol=1e-12)
