"""Direct tests for the generated-code runtime (repro.codegen.runtime)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import runtime
from repro.util.matrices import random_matrix


class TestAxpy:
    @pytest.mark.parametrize("alpha", [1.0, -1.0, 0.5, -2.5])
    def test_matches_reference(self, alpha):
        out = random_matrix(10, 8, 0)
        x = random_matrix(10, 8, 1)
        expected = out + alpha * x
        runtime.axpy(out, x, alpha)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    @pytest.mark.parametrize("alpha", [0.5, -2.5, 3.0])
    def test_scratch_branch_is_bitwise_equal_and_allocation_free(self, alpha):
        from repro.core.workspace import track_allocations

        ref = random_matrix(256, 256, 2)
        x = random_matrix(256, 256, 3)
        out = ref.copy()
        runtime.axpy(ref, x, alpha)  # allocating general branch
        scratch = np.empty(out.nbytes, dtype=np.uint8)
        with track_allocations() as rep:
            runtime.axpy(out, x, alpha, scratch)
        np.testing.assert_array_equal(out, ref)
        assert rep.peak_bytes < out.nbytes // 2  # no matrix-sized temporary

    def test_numpy_scalar_alpha_does_not_upcast_float32(self):
        # NEP 50: a float64 numpy scalar would silently upcast the product
        out = np.ones((4, 4), dtype=np.float32)
        x = np.ones((4, 4), dtype=np.float32)
        scratch = np.empty(out.nbytes, dtype=np.uint8)
        runtime.axpy(out, x, np.float64(0.5), scratch)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, 1.5)


class TestLeaf:
    def test_default_base_writes_out(self):
        A = random_matrix(6, 5, 0)
        B = random_matrix(5, 7, 1)
        out = np.empty((6, 7))
        got = runtime.leaf(runtime.default_base, A, B, out)
        assert got is out
        np.testing.assert_array_equal(out, A @ B)

    def test_custom_base_copied_into_out(self):
        calls = []

        def base(a, b):
            calls.append(1)
            return a @ b

        A = random_matrix(4, 4, 2)
        out = np.empty((4, 4))
        got = runtime.leaf(base, A, A, out)
        assert got is out and calls == [1]

    def test_no_out_returns_base_result(self):
        A = random_matrix(3, 3, 3)
        np.testing.assert_array_equal(runtime.leaf(runtime.default_base,
                                                   A, A), A @ A)


class TestPeelApply:
    def test_no_peeling_fast_path(self):
        A = random_matrix(8, 8, 0)
        B = random_matrix(8, 8, 1)
        calls = []

        def core(a, b):
            calls.append((a.shape, b.shape))
            return a @ b

        C = runtime.peel_apply(A, B, 2, 2, 2, core)
        np.testing.assert_allclose(C, A @ B, atol=1e-12)
        assert calls == [((8, 8), (8, 8))]

    @given(st.integers(2, 25), st.integers(2, 25), st.integers(2, 25))
    @settings(max_examples=25, deadline=None)
    def test_peeling_property(self, p, q, r):
        A = random_matrix(p, q, p + q)
        B = random_matrix(q, r, q + r)
        C = runtime.peel_apply(A, B, 2, 3, 2, lambda a, b: a @ b)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    def test_core_gets_divisible_dims(self):
        A = random_matrix(7, 8, 3)
        B = random_matrix(8, 9, 4)
        seen = {}

        def core(a, b):
            seen["a"] = a.shape
            seen["b"] = b.shape
            return a @ b

        runtime.peel_apply(A, B, 3, 2, 4, core)
        assert seen["a"] == (6, 8)  # 7->6 rows, 8 divisible by 2
        assert seen["b"] == (8, 8)  # 9->8 cols

    @given(st.integers(2, 25), st.integers(2, 25), st.integers(2, 25))
    @settings(max_examples=25, deadline=None)
    def test_out_path_bitwise_matches_allocating(self, p, q, r):
        """With out=/workspace= the core writes its view; results match the
        allocating path bit for bit (identical gemm sequence)."""
        from repro.core.workspace import Workspace

        A = random_matrix(p, q, p + 2 * q)
        B = random_matrix(q, r, q + 2 * r)

        def core(a, b, o=None):
            if o is None:
                return a @ b
            np.matmul(a, b, out=o)
            return o

        ref = runtime.peel_apply(A, B, 2, 3, 2, core)
        out = np.empty((p, r))
        ws = Workspace(1 << 16)
        got = runtime.peel_apply(A, B, 2, 3, 2, core, out=out, workspace=ws)
        assert got is out
        assert np.array_equal(ref, got)

    def test_inner_dim_fixup_comes_from_workspace(self):
        from repro.core.workspace import Workspace

        A = random_matrix(8, 9, 5)  # q=9 peels against k=2
        B = random_matrix(9, 8, 6)

        def core(a, b, o=None):
            np.matmul(a, b, out=o)
            return o

        ws = Workspace(1 << 16)
        out = np.empty((8, 8))
        runtime.peel_apply(A, B, 2, 2, 2, core, out=out, workspace=ws)
        assert ws.high_water > 0  # the (pc, rc) fix-up buffer was taken
        np.testing.assert_allclose(out, A @ B, atol=1e-12)


class TestStackBlocks:
    def test_row_major_block_order(self):
        X = np.arange(16.0).reshape(4, 4)
        stack = runtime.stack_blocks(X, 2, 2)
        assert stack.shape == (4, 4)
        np.testing.assert_array_equal(stack[0], X[:2, :2].reshape(-1))
        np.testing.assert_array_equal(stack[1], X[:2, 2:].reshape(-1))
        np.testing.assert_array_equal(stack[2], X[2:, :2].reshape(-1))

    def test_dtype_preserved(self):
        X = np.ones((4, 6), dtype=np.float32)
        assert runtime.stack_blocks(X, 2, 3).dtype == np.float32


class TestStreamingPrimitives:
    def test_combine_matches_manual(self):
        X = random_matrix(6, 6, 5)
        # two chains over a 2x2 block grid
        chain = np.array([[1.0, 0.0, 0.0, 1.0], [0.0, 2.0, -1.0, 0.0]])
        out = runtime.streaming_combine(X, 2, 2, None, chain)
        blocks = [X[:3, :3], X[:3, 3:], X[3:, :3], X[3:, 3:]]
        np.testing.assert_allclose(out[0], blocks[0] + blocks[3], atol=1e-12)
        np.testing.assert_allclose(out[1], 2 * blocks[1] - blocks[2], atol=1e-12)

    def test_combine_with_defs(self):
        X = random_matrix(4, 4, 6)
        blocks = [X[:2, :2], X[:2, 2:], X[2:, :2], X[2:, 2:]]
        defs = np.array([[1.0, 1.0, 0.0, 0.0]])  # Y0 = A0 + A1
        chain = np.array([[0.0, 0.0, 1.0, 0.0, 2.0]])  # S0 = A2 + 2*Y0
        out = runtime.streaming_combine(X, 2, 2, defs, chain)
        np.testing.assert_allclose(
            out[0], blocks[2] + 2 * (blocks[0] + blocks[1]), atol=1e-12
        )

    def test_output_scatter(self):
        p = r = 4
        products = [random_matrix(2, 2, i) for i in range(3)]
        # C blocks (2x2 grid of 2x2): c0 = m0, c1 = m1 - m2, c2 = 0, c3 = m2
        chain = np.array([
            [1.0, 0.0, 0.0],
            [0.0, 1.0, -1.0],
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0],
        ])
        C = runtime.streaming_output(products, None, chain, p, r, 2, 2)
        np.testing.assert_allclose(C[:2, :2], products[0], atol=1e-12)
        np.testing.assert_allclose(C[:2, 2:], products[1] - products[2], atol=1e-12)
        np.testing.assert_allclose(C[2:, :2], 0.0, atol=1e-12)
        np.testing.assert_allclose(C[2:, 2:], products[2], atol=1e-12)

    def test_output_with_defs(self):
        products = [random_matrix(3, 3, i) for i in range(2)]
        defs = np.array([[1.0, 1.0]])  # Y = M0 + M1
        chain = np.array([[0.0, 0.0, 1.0]])  # C0 = Y
        C = runtime.streaming_output(products, defs, chain, 3, 3, 1, 1)
        np.testing.assert_allclose(C, products[0] + products[1], atol=1e-12)

    def test_combine_workspace_bitwise_equal(self):
        from repro.core.workspace import Workspace

        X = random_matrix(6, 6, 7)
        defs = np.array([[1.0, 0.0, 0.0, 1.0]])
        chain = np.array([[1.0, 0.0, 0.0, 1.0, 0.5],
                          [0.0, 2.0, -1.0, 0.0, 0.0]])
        ref = runtime.streaming_combine(X, 2, 2, defs, chain)
        ws = Workspace(1 << 16)
        got = runtime.streaming_combine(X, 2, 2, defs, chain, workspace=ws)
        assert ws.overflow_allocations == 0
        assert np.array_equal(ref, got)
        # the slab survives the internal stack release
        assert got.shape == ref.shape

    def test_combine_workspace_noncontiguous_core_view(self):
        # the peel core is a non-contiguous view; the arena path must fill
        # its stack block-wise instead of a silent reshape copy
        from repro.core.workspace import Workspace

        X = random_matrix(7, 7, 8)[:6, :6]
        chain = np.array([[1.0, -1.0, 0.0, 0.0]])
        ref = runtime.streaming_combine(X, 2, 2, None, chain)
        ws = Workspace(1 << 16)
        got = runtime.streaming_combine(X, 2, 2, None, chain, workspace=ws)
        assert np.array_equal(ref, got)

    def test_output_workspace_and_out_bitwise_equal(self):
        from repro.core.workspace import Workspace

        products = [random_matrix(3, 4, i) for i in range(3)]
        defs = np.array([[1.0, 1.0, 0.0]])
        chain = np.array([[1.0, 0.0, 0.0, 0.5],
                          [0.0, 1.0, -1.0, 0.0],
                          [0.0, 0.0, 0.0, 1.0],
                          [1.0, 1.0, 1.0, 1.0]])
        ref = runtime.streaming_output(products, defs, chain, 6, 8, 2, 2)
        ws = Workspace(1 << 16)
        out = np.empty((6, 8))
        got = runtime.streaming_output(products, defs, chain, 6, 8, 2, 2,
                                       out=out, workspace=ws)
        assert got is out
        assert ws.overflow_allocations == 0
        assert np.array_equal(ref, got)


class TestDefaultBase:
    def test_is_gemm(self):
        A = random_matrix(5, 4, 0)
        B = random_matrix(4, 6, 1)
        np.testing.assert_allclose(runtime.default_base(A, B), A @ B)
