"""The static-analysis suite (repro.analyze) -- golden runs and mutation tests.

The analyzers are only trustworthy if they are *sensitive*: a checker
that passes everything is indistinguishable from one that checks
nothing.  So alongside the golden all-clean sweeps, every analyzer is
fed a deliberately corrupted artifact -- a flipped coefficient, swapped
multiply operands, a leaked arena view, a dropped release, an unlocked
mutation, a corrupted catalog entry -- and must report the exact finding
code the corruption deserves.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading

import numpy as np
import pytest

from conftest import run_cli
from repro import analyze
from repro.algorithms import get_algorithm
from repro.analyze import arena, catalog, cemit, concurrency, symbolic
from repro.analyze.base import Finding, has_code
from repro.codegen.generator import generate_source
from repro.codegen.strategies import EMISSION_CONTRACT, STRATEGIES


def _source(alg_name="strassen", strategy="write_once", cse=False):
    return generate_source(get_algorithm(alg_name), strategy=strategy, cse=cse)


# ---------------------------------------------------------------- findings
def test_finding_str_and_dict():
    f = Finding("symbolic", "SYM-TENSOR", "strassen/write_once",
                "coefficient mismatch", {"worst": 1.0})
    assert str(f) == "[symbolic:SYM-TENSOR] strassen/write_once: coefficient mismatch"
    d = f.to_dict()
    assert d["code"] == "SYM-TENSOR" and d["detail"] == {"worst": 1.0}
    assert has_code([f], "SYM-TENSOR") and not has_code([f], "SYM-RANK")


# ---------------------------------------------------------------- golden
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("cse", [False, True])
def test_symbolic_golden_strassen(strategy, cse):
    findings = symbolic.verify_algorithm("strassen", strategy, cse)
    assert findings == []


@pytest.mark.parametrize("name", ["winograd", "s333", "bini322"])
def test_symbolic_golden_other_entries(name):
    # one exact high-rank entry, one <3,3,3>, one APA -- the APA case
    # proves the verifier checks against the entry's own [U,V,W], not
    # against the exact matmul tensor (APA schemes differ from it by
    # design)
    assert symbolic.verify_algorithm(name, "write_once", False) == []


def test_symbolic_rejects_scheme_metadata_drift():
    src = _source()
    # stale fingerprint: the module claims provenance it does not have
    mut = re.sub(r"'fingerprint': '[0-9a-f]+'", "'fingerprint': 'deadbeef'", src)
    assert mut != src
    findings = symbolic.verify_source(mut, where="mut")
    assert has_code(findings, "SYM-META")


def test_arena_golden_strassen():
    src = _source()
    alg = get_algorithm("strassen")
    assert arena.check_core_ws(src, algorithm=alg, strategy="write_once",
                               cse=False, where="golden") == []


def test_arena_tree_sweep_clean():
    checked, findings = arena.check_tree()
    assert checked > 100  # every function in src/repro is swept
    assert findings == []


def test_concurrency_tree_sweep_clean():
    checked, findings = concurrency.check_tree()
    assert checked >= len(concurrency.REGISTRY)
    assert findings == []


def test_catalog_golden():
    checked, findings = catalog.check_catalog()
    assert checked >= 15
    assert findings == []


def test_cemit_golden_catalog():
    # the C emitter sweep needs no compiler: emission is pure string
    # generation, so this proof holds on toolchain-free hosts too
    checked, findings = cemit.verify_catalog()
    assert checked >= 20
    assert findings == []


# ---------------------------------------------------------------- mutations
def test_mutation_flipped_coefficient_is_detected():
    src = _source()
    site = re.search(r"np\.add\((S\d+), (A\d+), out=\1\)", src).group(0)
    mut = src.replace(site, site.replace("np.add", "np.subtract"), 1)
    findings = symbolic.verify_source(mut, where="mut")
    assert has_code(findings, "SYM-TENSOR")


def test_mutation_swapped_operands_is_detected():
    src = _source()
    m = re.search(r"_run\((S\d+), (T\d+), ", src)
    mut = src.replace(m.group(0), f"_run({m.group(2)}, {m.group(1)}, ", 1)
    findings = symbolic.verify_source(mut, where="mut")
    assert has_code(findings, "SYM-OPERANDS")


def test_mutation_dropped_release_is_detected():
    src = _source()
    alg = get_algorithm("strassen")
    release = re.findall(r"\n(\s*ws\.release\(\w+\)\n)", src)[-1]
    mut = src.replace(release, "\n", 1)
    findings = arena.check_core_ws(mut, algorithm=alg, strategy="write_once",
                                   cse=False, where="mut")
    assert has_code(findings, "ARENA-UNRELEASED")


def test_mutation_read_after_release_is_detected():
    src = _source()
    alg = get_algorithm("strassen")
    lines = src.splitlines()
    for i, ln in enumerate(lines):
        rel = re.match(r"(\s*)ws\.release\((\w+)\)", ln)
        if not rel:
            continue
        for j in range(i - 1, -1, -1):
            taken = re.match(r"\s*(\w+) = ws\.take\(", lines[j])
            if taken:
                # a view of released memory flows into the output block
                lines.insert(i + 1,
                             f"{rel.group(1)}np.copyto(C0, {taken.group(1)})")
                break
        else:
            continue
        break
    mut = "\n".join(lines)
    assert mut != src
    findings = arena.check_core_ws(mut, algorithm=alg, strategy="write_once",
                                   cse=False, where="mut")
    assert has_code(findings, "ARENA-ESCAPE")


_UNLOCKED_MODULE = """
import threading
_lock = threading.Lock()
_entries = {}

def put(key, value):
    _entries[key] = value

def put_locked(key, value):
    _entries[key] = value

def put_guarded(key, value):
    with _lock:
        _entries[key] = value
"""


def test_mutation_unlocked_mutation_is_detected():
    states = (concurrency.SharedState("fake.mod", "_entries", "_lock", "test"),)
    checked, findings = concurrency.check_module_source(
        _UNLOCKED_MODULE, states, where="fake.mod")
    # three mutation sites; only the one outside a lock / *_locked helper
    # may fire
    assert checked == 3
    assert [f.code for f in findings] == ["CONC-UNLOCKED"]
    assert findings[0].where == "fake.mod:7"


def test_mutation_cemit_corruptions_are_detected():
    from repro.codegen.cbackend import generate_c_source

    alg = get_algorithm("strassen")
    src = generate_c_source(alg, False)
    # flipped sign in a fused store -> wrong bilinear tensor
    sign = src.replace("pA0[j] + pA3[j]", "pA0[j] - pA3[j]", 1)
    assert sign != src
    assert has_code(cemit.verify_source(sign, alg, False, where="mut"),
                    "CEMIT-TENSOR")
    # a statement outside the emission contract fails loud, never skips
    alien = src.replace("#include <stddef.h>",
                        "#include <stddef.h>\nint rogue = 1;")
    assert has_code(cemit.verify_source(alien, alg, False, where="mut"),
                    "CEMIT-PARSE")
    # provenance header drift
    stale = src.replace("rank 7", "rank 8", 1)
    assert stale != src
    assert has_code(cemit.verify_source(stale, alg, False, where="mut"),
                    "CEMIT-HEADER")


def test_mutation_unlocked_lib_cache_is_detected():
    # satellite regression: the shared-library cache must stay behind its
    # lock.  The shipped source is proven clean, then the cache store is
    # hoisted out of its ``with _lib_lock`` block and the lint must fire.
    from pathlib import Path

    import repro.codegen.cbackend as cb

    src = Path(cb.__file__).read_text()
    states = tuple(s for s in concurrency.REGISTRY
                   if s.module == "codegen/cbackend.py")
    assert {s.name for s in states} >= {"_LIB_CACHE", "_CACHE_STATE"}
    _, clean = concurrency.check_module_source(
        src, states, where="codegen/cbackend.py")
    assert clean == []
    mut = re.sub(
        r"with _lib_lock:\n(?:\s*#[^\n]*\n)*\s*"
        r"return _LIB_CACHE\.setdefault\(key, lib\)",
        "return _LIB_CACHE.setdefault(key, lib)", src)
    assert mut != src
    _, findings = concurrency.check_module_source(mut, states, where="mut")
    assert has_code(findings, "CONC-UNLOCKED")


def test_mutation_corrupted_scheme_is_detected():
    alg = get_algorithm("strassen")
    U = alg.U.copy()
    U[0, 0] += 1.0
    bad = dataclasses.replace(alg, U=U)
    findings = catalog.check_algorithm(bad, where="mut")
    assert has_code(findings, "CAT-RESIDUAL")


def test_mutation_wrong_shape_is_detected():
    # FastAlgorithm's constructor validates shapes eagerly, so the broken
    # entry is a duck type -- exactly what a corrupted on-disk payload
    # that bypassed the constructor would look like
    import types

    alg = get_algorithm("strassen")
    bad = types.SimpleNamespace(
        name="mut", m=alg.m, k=alg.k, n=alg.n, rank=alg.rank, apa=False,
        U=np.zeros((3, alg.rank)), V=alg.V, W=alg.W)
    findings = catalog.check_algorithm(bad, where="mut")
    assert has_code(findings, "CAT-SHAPE")


# ---------------------------------------------------------------- facade
def test_run_dispatches_and_counts():
    checked, findings = analyze.run("catalog")
    assert checked >= 15 and findings == []
    with pytest.raises(ValueError):
        analyze.run("nonesuch")


def test_emission_contract_covers_all_strategies():
    # every Python strategy plus the C chain emitter's statement forms
    assert set(EMISSION_CONTRACT) == set(STRATEGIES) | {"cbackend"}
    # the arena-backed lowerings draw from the workspace, never the heap
    assert "ws.take" in EMISSION_CONTRACT["write_once"]
    assert "ws.take" in EMISSION_CONTRACT["streaming"]
    assert "fused_store" in EMISSION_CONTRACT["cbackend"]


def test_scheme_metadata_in_generated_modules():
    src = _source("winograd", "streaming", True)
    ns: dict = {}
    exec(compile(src, "<gen>", "exec"), ns)  # noqa: S102 -- generated by us
    meta = ns["_SCHEME"]
    assert meta["algorithm"] == "winograd"
    assert meta["base_case"] == (2, 2, 2)
    assert meta["strategy"] == "streaming" and meta["cse"] is True
    assert meta["rank"] == ns["RANK"]
    assert re.fullmatch(r"[0-9a-f]{12,64}", meta["fingerprint"])


# ---------------------------------------------------------------- cli
def test_cli_analyze_selected_passes():
    rc, out = run_cli("analyze", "--catalog", "--concurrency")
    assert rc == 0
    assert "catalog" in out and "clean" in out


def test_cli_analyze_json_shape():
    rc, out = run_cli("analyze", "--symbolic", "--arena",
                      "-a", "strassen", "--json")
    assert rc == 0
    payload = json.loads(out)
    assert payload["analyzers"] == ["symbolic", "arena"]
    assert payload["findings"] == []
    assert payload["checked"] > 0


# ------------------------------------------------------- lock regressions
def test_plan_cache_concurrent_mutation(tmp_path):
    # regression for the unlocked PlanCache the concurrency lint caught:
    # hammer one cache from several threads; without the RLock this
    # corrupts the entry dict / failure ledger
    from repro.tuner.cache import PlanCache
    from repro.tuner.space import Plan

    cache = PlanCache(tmp_path / "plans.json")
    plan = Plan(algorithm="strassen", steps=1, strategy="write_once",
                scheme="sequential", threads=1)
    errors = []

    def worker(tid):
        try:
            for i in range(50):
                cache.put(64 + tid, 64, 64 + i % 7, "float64", 1, plan, 0.001)
                cache.get(64 + tid, 64, 64 + i % 7, "float64", 1)
                cache.record_failure(64 + tid, 64, 64, "float64", 1,
                                     plan, RuntimeError("x"))
                cache.plan_quarantined(64 + tid, 64, 64, "float64", 1, plan)
                cache.keys()
                cache.save()
        except Exception as exc:  # noqa: BLE001 -- the assertion is "no exception"
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    cache2 = PlanCache(tmp_path / "plans.json")
    assert len(cache2) > 0  # the file survived concurrent saves


def test_shared_cache_single_instance_under_race():
    # regression for the unlocked lazy init in dispatch._shared_cache
    from repro.tuner import dispatch

    dispatch.reset_shared_cache()
    found = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        found.append(dispatch._shared_cache())

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(c) for c in found}) == 1
    dispatch.reset_shared_cache()
