"""Tests for the distributed-memory communication simulator
(repro.distributed, the paper's Section-6 extension)."""


import pytest

from repro.algorithms import strassen, get_algorithm
from repro.distributed import (
    Machine,
    best_schedule,
    cannon_cost,
    caps_cost,
    enumerate_schedules,
    summa_cost,
    threed_cost,
)
from repro.distributed.fast import bandwidth_exponent, communication_series


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(0)
        with pytest.raises(ValueError):
            Machine(4, alpha=-1.0)

    def test_time_formula(self):
        m = Machine(4, alpha=1.0, beta=2.0, gamma=3.0)
        from repro.distributed.model import CostBreakdown

        c = CostBreakdown(messages=1, words=10, flops=100)
        assert c.time(m) == pytest.approx(1 + 20 + 300)

    def test_breakdown_add(self):
        from repro.distributed.model import CostBreakdown

        a = CostBreakdown(1, 2, 3, peak_memory=5)
        b = CostBreakdown(10, 20, 30, peak_memory=4)
        c = a + b
        assert (c.messages, c.words, c.flops) == (11, 22, 33)
        assert c.peak_memory == 5


class TestClassicalBaselines:
    def test_summa_flops_scale(self):
        c = summa_cost(1024, Machine(16))
        assert c.flops == pytest.approx(2 * 1024 ** 3 / 16)

    def test_summa_words_scale_with_sqrt_p(self):
        """Per-processor words ~ n^2/sqrt(P): quadrupling P halves them."""
        c4 = summa_cost(1024, Machine(4))
        c16 = summa_cost(1024, Machine(16))
        assert c4.words / c16.words == pytest.approx(2.0, rel=0.01)

    def test_summa_needs_square_grid(self):
        with pytest.raises(ValueError, match="square"):
            summa_cost(100, Machine(7))

    def test_cannon_matches_summa_words(self):
        cs = summa_cost(512, Machine(16))
        cc = cannon_cost(512, Machine(16))
        assert cc.words == pytest.approx(cs.words)

    def test_threed_beats_2d_bandwidth(self):
        c2d = summa_cost(4096, Machine(64))
        c3d = threed_cost(4096, Machine(64))
        assert c3d.words < c2d.words

    def test_threed_needs_cube(self):
        with pytest.raises(ValueError, match="cubic"):
            threed_cost(100, Machine(16))

    def test_threed_memory_replication(self):
        c = threed_cost(1024, Machine(64))
        # ~3 n^2 / P^(2/3) = 3 * 1024^2 / 16
        assert c.peak_memory == pytest.approx(3 * 1024 ** 2 / 16)


class TestCaps:
    def test_empty_schedule_is_summa(self):
        mach = Machine(16)
        caps = caps_cost(strassen(), 1024, mach, "")
        summa = summa_cost(1024, mach)
        assert caps.flops == pytest.approx(summa.flops)
        assert caps.words == pytest.approx(summa.words)

    def test_bfs_requires_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            caps_cost(strassen(), 1024, Machine(16), "B")

    def test_bfs_reduces_flops_per_proc(self):
        """One BFS step: each group does 1/7 of the multiplies on 1/7 of
        the processors -> critical-path flops shrink vs classical."""
        mach = Machine(49)
        c2 = caps_cost(strassen(), 2048, mach, "BB")
        classical_flops = 2 * 2048 ** 3 / 49
        assert c2.flops < classical_flops

    def test_dfs_multiplies_critical_path(self):
        mach = Machine(4)
        c1 = caps_cost(strassen(), 1024, mach, "D")
        # 7 subproblems of half size, sequential: 7 * 2(n/2)^3/P + adds
        assert c1.flops >= 7 * 2 * 512 ** 3 / 4

    def test_bad_schedule_letter(self):
        with pytest.raises(ValueError, match="'B'/'D'"):
            caps_cost(strassen(), 64, Machine(7), "X")

    def test_bfs_memory_blowup_tracked(self):
        mach = Machine(49)
        shallow = caps_cost(strassen(), 2048, mach, "B")
        deep = caps_cost(strassen(), 2048, mach, "BB")
        assert deep.peak_memory >= shallow.peak_memory

    def test_other_base_cases_work(self):
        alg = get_algorithm("s233")  # rank 15
        c = caps_cost(alg, 1500, Machine(15), "B")
        assert c.words > 0 and c.flops > 0


class TestSchedules:
    def test_enumerate_respects_divisibility(self):
        scheds = [s for s, _ in enumerate_schedules(strassen(), 512,
                                                    Machine(4), 2)]
        assert "" in scheds and "D" in scheds and "DD" in scheds
        assert "B" not in scheds  # 4 not divisible by 7

    def test_best_schedule_prefers_bfs_with_memory(self):
        mach = Machine(49)
        sched, cost = best_schedule(strassen(), 4096, mach, max_steps=2)
        assert "B" in sched

    def test_memory_limit_forces_away_from_bfs(self):
        """With a memory cap between the DFS and BFS footprints, the BFS
        schedule no longer fits and the chooser falls back -- CAPS's
        memory/communication trade-off."""
        n = 1024
        loose = Machine(49)
        sched_loose, c_loose = best_schedule(strassen(), n, loose, max_steps=2)
        assert "B" in sched_loose  # plenty of memory: BFS preferred
        tight = Machine(49, memory_words=c_loose.peak_memory * 0.8)
        sched, cost = best_schedule(strassen(), n, tight, max_steps=2)
        assert cost.fits(tight)
        assert sched != sched_loose

    def test_memory_cannot_go_below_input_data(self):
        """No schedule fits below the distributed input size itself."""
        mach = Machine(49, memory_words=1024 ** 2 / 49)  # < 3n^2/P
        with pytest.raises(ValueError, match="no feasible"):
            best_schedule(strassen(), 1024, mach, max_steps=2)

    def test_infeasible_memory_raises(self):
        mach = Machine(49, memory_words=10.0)
        with pytest.raises(ValueError, match="no feasible schedule"):
            best_schedule(strassen(), 4096, mach, max_steps=2)


class TestAsymptotics:
    def test_bandwidth_exponent_beats_classical(self):
        """2/omega0 > 2/3: fast algorithms scale communication better."""
        assert bandwidth_exponent(strassen()) > 2 / 3
        assert bandwidth_exponent(get_algorithm("s244")) > 2 / 3

    def test_strassen_communicates_less_at_scale(self):
        """The Section-6 claim in simulation: at large P (with memory),
        BFS-parallel Strassen moves fewer words than SUMMA.  At P=49 the
        constants nearly cancel; at P=7^4 the asymptotic gap is clear."""
        series = communication_series(strassen(), 16384, [2401])
        P, fast_words, summa_words = series[0]
        assert fast_words < 0.8 * summa_words

    def test_aggregate_bandwidth_scales_with_nodes(self):
        """Paper Section 6: 'on distributed-memory the memory-bandwidth
        scaling bottleneck does not occur -- aggregate bandwidth scales
        with nodes.'  In the model: per-proc words decrease as P grows."""
        w49 = caps_cost(strassen(), 16384, Machine(49), "B").words
        w343 = caps_cost(strassen(), 16384, Machine(343), "BB").words
        assert w343 < w49
