"""Unit tests for repro.core.tensor: the matmul tensor and tensor algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tensor as tz

dims = st.integers(min_value=1, max_value=4)


class TestMatmulTensor:
    def test_shape(self):
        T = tz.matmul_tensor(2, 3, 4)
        assert T.shape == (6, 12, 8)

    def test_nnz_is_mkn(self):
        for m, k, n in [(1, 1, 1), (2, 2, 2), (2, 3, 4), (3, 3, 6)]:
            T = tz.matmul_tensor(m, k, n)
            assert np.count_nonzero(T) == m * k * n

    def test_entries_are_unit(self):
        T = tz.matmul_tensor(3, 2, 3)
        vals = np.unique(T)
        assert set(vals.tolist()) <= {0.0, 1.0}

    def test_paper_222_frontal_slices(self):
        """The four frontal slices printed in Section 2.2.2."""
        T = tz.matmul_tensor(2, 2, 2)
        T1 = np.zeros((4, 4)); T1[0, 0] = T1[1, 2] = 1
        T2 = np.zeros((4, 4)); T2[0, 1] = T2[1, 3] = 1
        T3 = np.zeros((4, 4)); T3[2, 0] = T3[3, 2] = 1
        T4 = np.zeros((4, 4)); T4[2, 1] = T4[3, 3] = 1
        for k, expected in enumerate([T1, T2, T3, T4]):
            np.testing.assert_array_equal(tz.frontal_slice(T, k), expected)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            tz.matmul_tensor(0, 2, 2)
        with pytest.raises(ValueError):
            tz.matmul_tensor(2, -1, 2)

    @given(dims, dims, dims)
    @settings(max_examples=20, deadline=None)
    def test_tensor_computes_matmul(self, m, k, n):
        """T x1 vec(A) x2 vec(B) == vec(A @ B) for random matrices."""
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        T = tz.matmul_tensor(m, k, n)
        z = tz.mode_product(T, tz.vec(A), tz.vec(B))
        np.testing.assert_allclose(tz.unvec(z, m, n), A @ B, atol=1e-12)

    def test_paper_example_c21(self):
        """T3 x1 vec(A) x2 vec(B) = a21 b11 + a22 b21 = c21 (Section 2.2.2)."""
        rng = np.random.default_rng(0)
        A = rng.standard_normal((2, 2))
        B = rng.standard_normal((2, 2))
        T = tz.matmul_tensor(2, 2, 2)
        val = tz.vec(A) @ tz.frontal_slice(T, 2) @ tz.vec(B)
        assert val == pytest.approx(A[1, 0] * B[0, 0] + A[1, 1] * B[1, 0])


class TestFactorAlgebra:
    def test_tensor_from_factors_rank_one(self):
        u = np.array([[1.0], [2.0]])
        v = np.array([[3.0], [0.0], [1.0]])
        w = np.array([[1.0], [-1.0]])
        T = tz.tensor_from_factors(u, v, w)
        assert T.shape == (2, 3, 2)
        assert T[1, 0, 1] == pytest.approx(2 * 3 * -1)

    def test_residual_zero_for_self(self):
        rng = np.random.default_rng(1)
        U, V, W = (rng.standard_normal((4, 5)) for _ in range(3))
        T = tz.tensor_from_factors(U, V, W)
        assert tz.residual(T, U, V, W) == pytest.approx(0.0, abs=1e-12)

    def test_relative_residual_normalization(self):
        T = tz.matmul_tensor(2, 2, 2)
        Z = np.zeros((4, 1))
        rel = tz.relative_residual(T, Z, Z, Z)
        assert rel == pytest.approx(1.0)

    @given(st.integers(0, 2))
    @settings(max_examples=6, deadline=None)
    def test_unfold_khatri_rao_identity(self, mode):
        """unfold(T, mode) == F @ khatri_rao(other two factors).T"""
        rng = np.random.default_rng(mode)
        U = rng.standard_normal((3, 4))
        V = rng.standard_normal((5, 4))
        W = rng.standard_normal((2, 4))
        T = tz.tensor_from_factors(U, V, W)
        pairs = {0: (U, (V, W)), 1: (V, (U, W)), 2: (W, (U, V))}
        F, (A, B) = pairs[mode]
        np.testing.assert_allclose(
            tz.unfold(T, mode), F @ tz.khatri_rao(A, B).T, atol=1e-12
        )

    def test_unfold_bad_mode(self):
        with pytest.raises(ValueError):
            tz.unfold(tz.matmul_tensor(2, 2, 2), 3)

    def test_khatri_rao_mismatched_columns(self):
        with pytest.raises(ValueError):
            tz.khatri_rao(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_vec_unvec_roundtrip(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((3, 5))
        np.testing.assert_array_equal(tz.unvec(tz.vec(A), 3, 5), A)

    def test_vec_is_row_major(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(tz.vec(A), [1.0, 2.0, 3.0, 4.0])
