"""Smoke tests: every shipped example must run to completion.

The examples are the library's living documentation; this file keeps them
from rotting.  Each runs as a subprocess (so import-time problems count as
failures too) with a generous timeout; the slower ones are marked so a
quick `-m "not slow"` run skips them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "shape_matching.py",
    "numerical_stability.py",
    "distributed_communication.py",
]
SLOW = [
    "parallel_scaling.py",
    "discover_algorithm.py",
    "composed_54.py",
]


def _run(script, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    return proc.stdout


@pytest.mark.parametrize("script", FAST)
def test_fast_examples_run(script):
    out = _run(script)
    assert out.strip(), f"{script} printed nothing"


@pytest.mark.slow
@pytest.mark.parametrize("script", SLOW)
def test_slow_examples_run(script):
    out = _run(script)
    assert out.strip(), f"{script} printed nothing"


def test_fast_factorizations_with_small_size():
    # accepts the problem size on argv — keep the suite quick
    out = _run("fast_factorizations.py", "384")
    assert "blocked LU and Cholesky" in out
    assert "Newton-Schulz" in out


def test_quickstart_reports_correctness():
    out = _run("quickstart.py")
    assert "GFLOPS" in out or "gflops" in out.lower()
