"""float32 support across the whole stack (paper Section 5.1 note: single
precision is the honest alternative to APA algorithms)."""

import numpy as np
import pytest

import repro
from repro.codegen import STRATEGIES
from repro.parallel import SCHEMES, WorkerPool, multiply_parallel
from repro.util.matrices import random_matrix


@pytest.fixture(scope="module")
def f32_problem():
    A = random_matrix(67, 53, 0).astype(np.float32)
    B = random_matrix(53, 71, 1).astype(np.float32)
    return A, B, A.astype(np.float64) @ B.astype(np.float64)


class TestFloat32Codegen:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_dtype_preserved(self, f32_problem, strategy):
        A, B, ref = f32_problem
        C = repro.multiply(A, B, algorithm="s234", steps=2, strategy=strategy)
        assert C.dtype == np.float32
        rel = np.linalg.norm(C - ref) / np.linalg.norm(ref)
        assert rel < 1e-5  # float32 rounding floor, not float64 junk

    def test_cse_variant(self, f32_problem):
        A, B, _ = f32_problem
        C = repro.multiply(A, B, algorithm="strassen", steps=1, cse=True)
        assert C.dtype == np.float32

    def test_interpreter_dtype(self, f32_problem):
        A, B, _ = f32_problem
        C = repro.multiply_reference(A, B, repro.get_algorithm("s333"), steps=2)
        assert C.dtype == np.float32


class TestFloat32Parallel:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_schemes_preserve_dtype(self, f32_problem, scheme):
        A, B, ref = f32_problem
        with WorkerPool(2) as pool:
            kw = {"subgroup": 1} if scheme == "hybrid-subgroup" else {}
            C = multiply_parallel(A, B, repro.get_algorithm("strassen"),
                                  steps=1, scheme=scheme, pool=pool, **kw)
        assert C.dtype == np.float32
        rel = np.linalg.norm(C - ref) / np.linalg.norm(ref)
        assert rel < 1e-5


class TestMixedAndOtherDtypes:
    def test_mixed_promotes_to_float64(self):
        A = random_matrix(32, 32, 2).astype(np.float32)
        B = random_matrix(32, 32, 3)
        C = repro.multiply(A, B, algorithm="strassen")
        assert C.dtype == np.float64

    def test_int_inputs_upcast(self):
        A = np.arange(64, dtype=np.int32).reshape(8, 8)
        C = repro.multiply(A, A, algorithm="strassen")
        assert C.dtype == np.float64
        np.testing.assert_allclose(C, (A @ A).astype(float))

    def test_float32_vs_apa_accuracy(self):
        """The paper's remark quantified: float32 classical-precision beats
        our APA algorithms while being equally 'reduced precision'."""
        A = random_matrix(60, 40, 4)
        B = random_matrix(40, 44, 5)
        ref = A @ B
        C32 = repro.multiply(A.astype(np.float32), B.astype(np.float32),
                             algorithm="strassen", steps=1)
        Capa = repro.multiply(A, B, algorithm="bini322", steps=1)
        e32 = np.linalg.norm(C32 - ref) / np.linalg.norm(ref)
        eapa = np.linalg.norm(Capa - ref) / np.linalg.norm(ref)
        assert e32 < eapa
