"""Tests for the reference recursive executor (repro.core.recursion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm, strassen
from repro.core.recursion import (
    CutoffPolicy,
    combine_blocks,
    multiply,
    multiply_schedule,
)
from repro.util.matrices import random_matrix


class TestCombineBlocks:
    def test_all_zero_returns_none(self):
        blocks = [np.ones((2, 2))] * 3
        assert combine_blocks(blocks, np.zeros(3)) is None

    def test_single_unit_coeff_returns_view(self):
        blocks = [np.ones((2, 2)), np.zeros((2, 2))]
        out = combine_blocks(blocks, np.array([1.0, 0.0]))
        assert out is blocks[0]  # no copy

    def test_single_scaled(self):
        blocks = [np.ones((2, 2))]
        out = combine_blocks(blocks, np.array([-2.0]))
        np.testing.assert_array_equal(out, -2 * np.ones((2, 2)))
        assert out is not blocks[0]

    def test_multi_term_does_not_mutate_inputs(self):
        b0 = np.ones((2, 2))
        b1 = 2 * np.ones((2, 2))
        out = combine_blocks([b0, b1], np.array([1.0, -1.0]))
        np.testing.assert_array_equal(out, -np.ones((2, 2)))
        np.testing.assert_array_equal(b0, np.ones((2, 2)))

    def test_general_coefficients(self):
        b0 = np.full((2, 2), 3.0)
        b1 = np.full((2, 2), 5.0)
        out = combine_blocks([b0, b1], np.array([0.5, 2.0]))
        np.testing.assert_allclose(out, 0.5 * 3 + 2 * 5.0)


class TestMultiplyCorrectness:
    @pytest.mark.parametrize("steps", [0, 1, 2, 3])
    def test_strassen_power_of_two(self, steps):
        A = random_matrix(64, 64, 1)
        B = random_matrix(64, 64, 2)
        C = multiply(A, B, strassen(), steps=steps)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize(
        "p,q,r", [(7, 7, 7), (13, 17, 19), (31, 8, 15), (9, 27, 5), (1, 5, 1)]
    )
    def test_dynamic_peeling_odd_sizes(self, p, q, r):
        A = random_matrix(p, q, p)
        B = random_matrix(q, r, r)
        C = multiply(A, B, strassen(), steps=2)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(1, 40),
           st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_any_dims_match_numpy(self, p, q, r, steps):
        A = random_matrix(p, q, p * 41 + q)
        B = random_matrix(q, r, r * 43 + q)
        C = multiply(A, B, get_algorithm("s234"), steps=steps)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    def test_every_catalog_algorithm(self, all_exact_algorithms):
        A = random_matrix(37, 41, 3)
        B = random_matrix(41, 29, 4)
        for alg in all_exact_algorithms:
            C = multiply(A, B, alg, steps=2)
            np.testing.assert_allclose(
                C, A @ B, rtol=1e-8, atol=1e-8,
                err_msg=f"algorithm {alg.name} wrong",
            )

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            multiply(np.ones((2, 3)), np.ones((4, 2)), strassen())

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            multiply(np.ones(3), np.ones((3, 2)), strassen())


class TestStepsAndCutoff:
    def test_steps_zero_is_base(self):
        calls = []

        def base(A, B):
            calls.append(A.shape)
            return A @ B

        A = random_matrix(8, 8, 0)
        multiply(A, A, strassen(), steps=0, base=base)
        assert calls == [(8, 8)]

    def test_steps_counts_leaf_calls(self):
        calls = []

        def base(A, B):
            calls.append(1)
            return A @ B

        A = random_matrix(8, 8, 0)
        multiply(A, A, strassen(), steps=1, base=base)
        assert len(calls) == 7
        calls.clear()
        multiply(A, A, strassen(), steps=2, base=base)
        assert len(calls) == 49

    def test_min_dim_cutoff_stops_recursion(self):
        calls = []

        def base(A, B):
            calls.append(A.shape)
            return A @ B

        A = random_matrix(8, 8, 0)
        # blocks would be 4x4 then 2x2; min_dim=4 allows only one level
        policy = CutoffPolicy(max_steps=5, min_dim=4)
        C = multiply(A, A, strassen(), base=base, cutoff=policy)
        np.testing.assert_allclose(C, A @ A, atol=1e-10)
        assert len(calls) == 7

    def test_small_matrix_goes_straight_to_base(self):
        A = random_matrix(1, 1, 0)
        C = multiply(A, A, strassen(), steps=3)
        np.testing.assert_allclose(C, A @ A)

    def test_peeling_count_matches_flops_model(self):
        """With peeling, leaves of a 10x10x10 Strassen step are 5x5."""
        shapes = []

        def base(A, B):
            shapes.append((A.shape, B.shape))
            return A @ B

        A = random_matrix(10, 10, 0)
        multiply(A, A, strassen(), steps=1, base=base)
        assert shapes.count(((5, 5), (5, 5))) == 7


class TestMultiplySchedule:
    def test_empty_schedule_is_base(self):
        A = random_matrix(5, 6, 0)
        B = random_matrix(6, 4, 1)
        np.testing.assert_allclose(multiply_schedule(A, B, []), A @ B)

    def test_two_level_mixed_schedule(self):
        A = random_matrix(6 * 4, 6 * 4, 2)
        B = random_matrix(6 * 4, 6 * 4, 3)
        sched = [get_algorithm("s234"), get_algorithm("s432")]
        C = multiply_schedule(A, B, sched)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    def test_schedule_with_peeling(self):
        A = random_matrix(53, 47, 4)
        B = random_matrix(47, 39, 5)
        sched = [strassen(), get_algorithm("s233")]
        C = multiply_schedule(A, B, sched)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    def test_composed_54_shape_identity(self):
        """One level of each <3,3,6> permutation = the <54,54,54> algorithm
        (Section 5.2); verify on a (54, 54) problem."""
        A = random_matrix(54, 54, 6)
        B = random_matrix(54, 54, 7)
        sched = [get_algorithm("s336"), get_algorithm("s363"), get_algorithm("s633")]
        C = multiply_schedule(A, B, sched)
        np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8)
