"""Hypothesis parallel-equivalence suite (the multicore tier's backbone).

Mirrors ``test_codegen_workspace.py``'s structure for the *parallel*
execution layer, pinning down the ISSUE 5 contract:

1. every parallel scheme -- ``dfs``, ``bfs``, ``hybrid`` and
   ``hybrid-subgroup`` across its P' divisors -- is *bit-for-bit* equal
   to the sequential interpreter path, across thread counts {2, 4},
   float32/float64 and non-divisible shapes: the schedules reorder *work*
   (tasks, barriers, leaf batches), never the per-element arithmetic
   sequence;
2. the arena-backed parallel path is bit-for-bit equal to the allocating
   parallel path, with zero overflow allocations (the Section 4.1/4.2
   footprints cover the P'-swept hybrid too);
3. a hybrid-subgroup *plan* dispatched through ``tuner.matmul`` at 4
   threads executes its tuned P' and returns the right product.

The BLAS thread count is pinned to 1 around the interpreter reference:
the parallel schemes run their leaves under ``blas_threads(1)`` (BFS
tasks) or explicit thread counts (DFS), and bit-for-bit claims must not
hinge on a vendor gemm's thread-count-dependent blocking.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import get_algorithm
from repro.core.recursion import multiply as interpreter_multiply
from repro.core.workspace import Workspace
from repro.parallel import blas
from repro.parallel.pool import WorkerPool
from repro.parallel.schedules import SCHEMES, multiply_parallel
from repro.tuner import Plan, PlanCache
from repro.tuner import matmul as tuner_matmul
from repro.tuner import reset_workspaces
from repro.tuner.space import subgroup_candidates

pytestmark = pytest.mark.multicore

ALGS = ("strassen", "winograd", "s234", "s333")
THREADS = (2, 4)

#: shared pools (one per thread count): hypothesis runs many examples and
#: thread-pool startup must not dominate the tier's wall clock
_pools: dict[int, WorkerPool] = {}


def _pool(threads: int) -> WorkerPool:
    if threads not in _pools:
        _pools[threads] = WorkerPool(threads)
    return _pools[threads]


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    while _pools:
        _pools.popitem()[1].shutdown()


@st.composite
def parallel_configs(draw):
    """A valid (scheme, threads, subgroup) triple: P' is only drawn for
    the sub-group hybrid, and only from the divisors of the thread count
    (plus ``None`` for the execution-time default)."""
    scheme = draw(st.sampled_from(SCHEMES))
    threads = draw(st.sampled_from(THREADS))
    subgroup = None
    if scheme == "hybrid-subgroup":
        subgroup = draw(st.sampled_from(
            [None] + subgroup_candidates(threads)))
    return scheme, threads, subgroup


def _workspace(alg, scheme, steps, p, q, r, dtype_a, dtype_b):
    if scheme == "dfs":
        return Workspace.for_recursion([alg.base_case] * steps, p, q, r,
                                       dtype_a, dtype_b,
                                       algorithms=[alg] * steps)
    return Workspace.for_parallel(alg, steps, p, q, r, dtype_a, dtype_b)


# =========================================================================
# bit-for-bit: parallel (allocating and arena-backed) == interpreter
# =========================================================================
@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(ALGS),
    config=parallel_configs(),
    dtype=st.sampled_from((np.float64, np.float32)),
    steps=st.integers(1, 2),
    # >= 33 keeps two levels of every base case (<= 4 per dim) above the
    # interpreter's min_dim=2 cutoff: below it, the parallel DFS descends
    # onto slivers the interpreter (and the arena footprint, which mirrors
    # its skip semantics) legitimately handles differently -- the ranges
    # still cover non-divisible shapes at every level
    dims=st.tuples(st.integers(33, 80), st.integers(33, 80),
                   st.integers(33, 80)),
    seed=st.integers(0, 2**16),
)
def test_parallel_bit_for_bit_vs_interpreter(name, config, dtype, steps,
                                             dims, seed):
    scheme, threads, subgroup = config
    alg = get_algorithm(name)
    p, q, r = dims
    rng = np.random.default_rng(seed)
    A = rng.random((p, q)).astype(dtype)
    B = rng.random((q, r)).astype(dtype)
    with blas.blas_threads(1):
        ref = interpreter_multiply(A, B, alg, steps=steps)

    pool = _pool(threads)
    alloc = multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                              pool=pool, threads=threads, subgroup=subgroup)
    ws = _workspace(alg, scheme, steps, p, q, r, A.dtype, B.dtype)
    out = np.empty((p, r), dtype=np.result_type(A, B))
    got = multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                            pool=pool, threads=threads, subgroup=subgroup,
                            out=out, workspace=ws)

    assert got is out
    assert ws.overflow_allocations == 0
    # the scheduling layer moves work between threads, tasks and waves --
    # the per-element floating-point sequence must not move with it
    assert np.array_equal(alloc, ref), (scheme, threads, subgroup)
    assert np.array_equal(got, ref), (scheme, threads, subgroup)


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(ALGS),
    threads=st.sampled_from(THREADS),
    subgroup_idx=st.integers(0, 3),
    dtype=st.sampled_from((np.float64, np.float32)),
    dims=st.tuples(st.integers(30, 70), st.integers(30, 70),
                   st.integers(30, 70)),
    seed=st.integers(0, 2**16),
)
def test_subgroup_choice_never_changes_bits(name, threads, subgroup_idx,
                                            dtype, dims, seed):
    """Every P' divisor partitions the same leaf products over the same
    arithmetic -- results across the whole P' sweep are bit-identical, so
    the tuner's choice is purely a *performance* decision."""
    alg = get_algorithm(name)
    p, q, r = dims
    rng = np.random.default_rng(seed)
    A = rng.random((p, q)).astype(dtype)
    B = rng.random((q, r)).astype(dtype)
    pool = _pool(threads)
    candidates = subgroup_candidates(threads)
    sub = candidates[subgroup_idx % len(candidates)]
    base = multiply_parallel(A, B, alg, steps=1, scheme="hybrid-subgroup",
                             pool=pool, threads=threads,
                             subgroup=candidates[0])
    got = multiply_parallel(A, B, alg, steps=1, scheme="hybrid-subgroup",
                            pool=pool, threads=threads, subgroup=sub)
    assert np.array_equal(base, got), (threads, sub)


# =========================================================================
# dispatch: tuned hybrid-subgroup plans execute their P'
# =========================================================================
class TestDispatchExecutesSubgroup:
    def test_planted_subgroup_plan_dispatches_correctly(self, tmp_path):
        n = 160
        cache = PlanCache(tmp_path / "plans.json")
        plan = Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                    threads=4, subgroup=2, min_leaf=32)
        cache.put(n, n, n, "float64", 4, plan)
        rng = np.random.default_rng(7)
        A = rng.random((n, n))
        B = rng.random((n, n))
        reset_workspaces()
        C = tuner_matmul(A, B, threads=4, cache=cache)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)
        reset_workspaces()

    def test_subgroup_is_threaded_through_execution(self, monkeypatch):
        """The plan's P' must reach multiply_parallel verbatim -- not be
        re-derived from the thread count (the pre-ISSUE-5 behaviour)."""
        from repro.tuner import dispatch

        seen = {}
        real = dispatch.multiply_parallel

        def spy(A, B, alg, **kw):
            seen["subgroup"] = kw.get("subgroup")
            return real(A, B, alg, **kw)

        monkeypatch.setattr(dispatch, "multiply_parallel", spy)
        plan = Plan(algorithm="strassen", steps=1, scheme="hybrid-subgroup",
                    threads=4, subgroup=1, min_leaf=32)
        rng = np.random.default_rng(8)
        A = rng.random((140, 140))
        B = rng.random((140, 140))
        C = dispatch.execute_plan(plan, A, B)
        assert seen["subgroup"] == 1
        np.testing.assert_allclose(C, A @ B, atol=1e-9)
