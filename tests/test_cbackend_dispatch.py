"""The compiled serving path: backend="compiled" plans end to end.

Covers the tentpole (dispatchable, arena-aware C backend: plan field,
cost model, workspace sizing, execute path, guard degradation) and the
compile-cache bug sweep satellites: fingerprint-keyed ``.so`` caching,
atomic writes, per-user cache dir with in-memory degradation, and the
locked library cache under concurrent first compiles.

Everything that needs a real compiler is behind ``needs_cc``; hosts
without one must skip cleanly *and* never see a compiled candidate from
the tuner, which the no-compiler tests prove by stubbing the probe.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm
from repro.codegen import cbackend
from repro.core.cost import COMPILED_ADD_DISCOUNT, plan_cost
from repro.core.stability import error_bound
from repro.core.workspace import Workspace, track_allocations
from repro.guard import faults
from repro.tuner import dispatch, measure
from repro.tuner.cache import PlanCache
from repro.tuner.space import (
    PLAN_BACKENDS,
    Plan,
    enumerate_plans,
    retarget_backend,
)

HAVE_CC = cbackend.available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C compiler")

#: warm serving calls must stay under this many heap bytes (mirrors the
#: max_warm_alloc_bytes benchmark gate)
WARM_ALLOC_BUDGET = 1 << 20


def _operands(p, q, r, dtype="float64", seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((p, q)).astype(dtype)
    B = rng.standard_normal((q, r)).astype(dtype)
    return A, B


def _probe_src(tag: str) -> str:
    """A tiny valid unit unique per tag, so tests control cache misses."""
    return f"/* {tag} */\nvoid repro_probe_{tag}(void) {{}}\n"


@pytest.fixture
def fresh_cache_state():
    """Snapshot and restore cbackend's module-level cache state so tests
    can redirect the cache dir / clear loaded libraries without leaking
    into the rest of the suite."""
    with cbackend._lib_lock:
        saved_state = dict(cbackend._CACHE_STATE)
        saved_libs = dict(cbackend._LIB_CACHE)
    cbackend._compiled_cached.cache_clear()
    with cbackend._lib_lock:
        cbackend._CACHE_STATE.update({"dir": False, "warned": False})
        cbackend._LIB_CACHE.clear()
    yield
    cbackend._compiled_cached.cache_clear()
    with cbackend._lib_lock:
        cbackend._CACHE_STATE.clear()
        cbackend._CACHE_STATE.update(saved_state)
        cbackend._LIB_CACHE.clear()
        cbackend._LIB_CACHE.update(saved_libs)


# ---------------------------------------------------------------- plan field
class TestPlanBackend:
    def test_backend_default_and_describe(self):
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential")
        assert plan.backend == "numpy"
        assert "[cc]" not in plan.describe()
        cc = Plan(algorithm="strassen", steps=1, scheme="sequential",
                  backend="compiled")
        assert cc.describe().endswith("[cc]")

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            Plan(algorithm="strassen", steps=1, backend="fortran")
        with pytest.raises(ValueError):
            Plan(backend="compiled")  # dgemm has no chains to compile
        with pytest.raises(ValueError):
            Plan(algorithm="strassen", steps=1, scheme="bfs",
                 backend="compiled")

    def test_retarget_backend(self):
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential")
        cc = retarget_backend(plan, "compiled")
        assert cc.backend == "compiled" and cc.algorithm == plan.algorithm
        assert retarget_backend(cc, "numpy") == plan
        assert retarget_backend(plan, "numpy") is plan
        with pytest.raises(ValueError):
            retarget_backend(Plan(), "compiled")
        with pytest.raises(ValueError):
            retarget_backend(plan, "cuda")

    def test_backend_round_trips_through_plan_cache(self, tmp_path):
        cache = PlanCache(tmp_path / "plans.json")
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                    backend="compiled")
        cache.put(512, 512, 512, "float64", 1, plan, seconds=0.5)
        cache.save()
        got = PlanCache(cache.path).get(512, 512, 512, "float64", 1)
        assert got == plan and got.backend == "compiled"
        # pre-v6 entries carry no backend field and resolve to numpy
        legacy = dict(plan.to_dict())
        legacy.pop("backend")
        assert Plan.from_dict(legacy).backend == "numpy"

    def test_compiled_cost_discounts_additions_only(self):
        alg = get_algorithm("strassen")
        base = plan_cost(alg, 512, 512, 512, 2)
        cc = plan_cost(alg, 512, 512, 512, 2, backend="compiled")
        assert cc < base
        # dgemm has no additions to discount
        assert plan_cost(None, 512, 512, 512, 0) == \
            plan_cost(None, 512, 512, 512, 0, backend="numpy")
        assert 0.0 < COMPILED_ADD_DISCOUNT < 1.0


# ---------------------------------------------------------------- .so cache
class TestCompileCache:
    def test_key_covers_source_compiler_flags_fingerprint(self, monkeypatch):
        src = _probe_src("keying")
        keys = {cbackend._source_key(src)}
        keys.add(cbackend._source_key(src + "\n"))
        monkeypatch.setattr(cbackend, "_CC", "some-other-cc")
        keys.add(cbackend._source_key(src))
        monkeypatch.undo()
        monkeypatch.setattr(cbackend, "_CFLAGS", ["-O0"])
        keys.add(cbackend._source_key(src))
        monkeypatch.undo()
        import repro.bench.machine as machine

        monkeypatch.setattr(machine, "fingerprint_digest",
                            lambda: "another-machine")
        keys.add(cbackend._source_key(src))
        # every perturbation must produce a distinct key: a .so built by
        # another compiler/flags/machine is never reused
        assert len(keys) == 5

    @needs_cc
    def test_cache_dir_env_honored_and_writes_atomic(
            self, tmp_path, monkeypatch, fresh_cache_state):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = _probe_src("atomic")
        lib = cbackend._compile_source(src)
        cache = tmp_path / "cbackend"
        names = sorted(p.name for p in cache.iterdir())
        assert any(n.endswith(".so") for n in names)
        assert any(n.endswith(".c") for n in names)
        # regression: interrupted/competing builds used to leave partial
        # files the next process could dlopen -- only final names may exist
        assert not any(".tmp" in n for n in names), names
        assert cbackend._compile_source(src) is lib

    @needs_cc
    def test_second_process_reuses_disk_cache_without_compiling(
            self, tmp_path, monkeypatch, fresh_cache_state):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = _probe_src("reuse")
        cbackend._compile_source(src)
        # simulate a fresh process: drop the in-memory handle, keep disk
        with cbackend._lib_lock:
            cbackend._LIB_CACHE.clear()

        def no_compile(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("compiler invoked despite a cached .so")

        monkeypatch.setattr(cbackend.subprocess, "run", no_compile)
        assert cbackend._compile_source(src) is not None

    @needs_cc
    def test_unwritable_cache_dir_degrades_in_memory(
            self, tmp_path, monkeypatch, fresh_cache_state):
        # the cache root's parent is a *file*, so mkdir fails even for
        # root (chmod-based unwritability does not bind uid 0)
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("in the way")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "sub"))
        with pytest.warns(RuntimeWarning, match="not writable"):
            lib = cbackend._compile_source(_probe_src("degraded"))
        assert lib is not None
        with cbackend._lib_lock:
            assert cbackend._CACHE_STATE["dir"] is None
        # warn-once: the second compile stays quiet
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            cbackend._compile_source(_probe_src("degraded2"))

    @needs_cc
    def test_concurrent_first_compiles_converge(
            self, tmp_path, monkeypatch, fresh_cache_state):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = _probe_src("race")
        n = 6
        libs: list = [None] * n
        barrier = threading.Barrier(n)

        def worker(i):
            barrier.wait()
            libs[i] = cbackend._compile_source(src)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(lib is libs[0] and lib is not None for lib in libs)
        names = [p.name for p in (tmp_path / "cbackend").iterdir()]
        assert not any(".tmp" in n_ for n_ in names), names


# ---------------------------------------------------------------- dispatch
@needs_cc
class TestCompiledDispatch:
    def test_enumerate_includes_compiled_twins(self):
        plans = enumerate_plans(384, 384, 384, threads=1)
        compiled = [p for p in plans if p.backend == "compiled"]
        assert compiled
        assert all(p.scheme == "sequential" and not p.is_dgemm
                   for p in compiled)
        # threaded schedules never get compiled twins
        assert all(p.backend == "numpy"
                   for p in enumerate_plans(1024, 1024, 1024, threads=8)
                   if p.scheme != "sequential")

    def test_execute_plan_compiled_matches_numpy(self):
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                    threads=1, backend="compiled")
        A, B = _operands(200, 176, 144, seed=1)
        ws = dispatch.build_workspace(plan, 200, 176, 144, A.dtype, B.dtype)
        out = np.empty((200, 144))
        C = dispatch.execute_plan(plan, A, B, out=out, workspace=ws)
        assert C is out
        np.testing.assert_allclose(C, A @ B, atol=1e-10 * 176)
        assert ws.stats()["overflow_allocations"] == 0

    def test_warm_compiled_dispatch_is_allocation_free(self):
        plan = Plan(algorithm="strassen", steps=2, scheme="sequential",
                    threads=1, backend="compiled")
        n = 192
        A, B = _operands(n, n, n, seed=2)
        out = np.empty((n, n))
        ws = dispatch.build_workspace(plan, n, n, n, A.dtype, B.dtype)
        dispatch.execute_plan(plan, A, B, out=out, workspace=ws)  # warm
        with track_allocations() as rep:
            dispatch.execute_plan(plan, A, B, out=out, workspace=ws)
        assert rep.peak_bytes is not None
        assert rep.peak_bytes < WARM_ALLOC_BUDGET
        assert ws.stats()["overflow_allocations"] == 0

    def test_compilefail_fault_degrades_not_fails(self, fresh_cache_state):
        dispatch.reset_workspaces()
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1, backend="compiled")
        A, B = _operands(128, 128, 128, seed=3)
        before = faults.fired("cbackend.compilefail")
        with faults.inject("cbackend.compilefail"):
            C = dispatch.execute_plan(plan, A, B)
        assert faults.fired("cbackend.compilefail") == before + 1
        np.testing.assert_allclose(C, A @ B, atol=1e-10 * 128)

    def test_workspace_sized_by_cbackend_footprint(self):
        plan = Plan(algorithm="winograd", steps=2, scheme="sequential",
                    threads=1, backend="compiled")
        ws = dispatch.build_workspace(plan, 160, 160, 160,
                                      np.dtype("f8"), np.dtype("f8"))
        expect = Workspace.for_cbackend(get_algorithm("winograd"), False,
                                        (160, 160, 160), "float64", 2)
        assert isinstance(ws, Workspace)
        assert ws.nbytes == expect.nbytes

    def test_measure_plan_forces_warmup_for_compiled(self, monkeypatch):
        seen = {}

        def fake_median_time(fn, trials, warmup):
            seen["warmup"] = warmup
            fn()
            return 1.0

        monkeypatch.setattr(measure, "median_time", fake_median_time)
        A, B = _operands(128, 128, 128, seed=4)
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1, backend="compiled")
        measure.measure_plan(plan, A, B, trials=1, warmup=0)
        assert seen["warmup"] == 1  # compile/load never lands in a trial
        measure.measure_plan(dataclass_replace(plan, backend="numpy"),
                             A, B, trials=1, warmup=0)
        assert seen["warmup"] == 0


def dataclass_replace(plan, **kw):
    import dataclasses

    return dataclasses.replace(plan, **kw)


# ---------------------------------------------------------------- agreement
@needs_cc
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(
    p=st.integers(min_value=48, max_value=160),
    q=st.integers(min_value=48, max_value=160),
    r=st.integers(min_value=48, max_value=160),
    steps=st.integers(min_value=1, max_value=2),
    name=st.sampled_from(["strassen", "winograd", "s234"]),
    cse=st.booleans(),
    dtype=st.sampled_from(["float64", "float32"]),
)
def test_compiled_agrees_with_reference(p, q, r, steps, name, cse, dtype):
    """Compiled chains match the exact product within the a-priori
    stability bound, across dtypes, CSE, and non-divisible shapes (the
    dynamic-peeling path), honoring the ``np.result_type`` contract."""
    A, B = measure.tuning_operands(p, q, r, dtype=dtype, seed=7)
    cc = cbackend.compile_chains(name, cse=cse)
    C = cc.multiply(A, B, steps=steps)
    assert C.dtype == np.result_type(A, B)
    exact = A.astype("float64") @ B.astype("float64")
    denom = float(np.linalg.norm(exact)) or 1.0
    rel = float(np.linalg.norm(C.astype("float64") - exact)) / denom
    assert rel <= error_bound(get_algorithm(name), steps, q, dtype)


# ---------------------------------------------------------------- no compiler
class TestNoCompilerHost:
    def test_compiled_candidates_never_enumerated(self, monkeypatch):
        monkeypatch.setattr(cbackend, "available", lambda: False)
        plans = enumerate_plans(384, 384, 384, threads=1)
        assert plans and all(p.backend == "numpy" for p in plans)

    def test_compile_chains_raises_loud(self, monkeypatch):
        monkeypatch.setattr(cbackend, "available", lambda: False)
        with pytest.raises(RuntimeError, match="no working C compiler"):
            cbackend.compile_chains("strassen")

    def test_backends_constant(self):
        assert PLAN_BACKENDS == ("numpy", "compiled")
