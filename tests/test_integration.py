"""End-to-end integration tests across the whole public API."""

import numpy as np
import pytest

import repro
from repro.bench.runner import run_sequential
from repro.bench import workloads
from repro.util.matrices import random_matrix
from tests.conftest import catalog_names


class TestPublicMultiply:
    @pytest.mark.parametrize("name", ["strassen", "s424", "s433", "s333"])
    def test_by_name(self, name):
        A = random_matrix(97, 83, 0)
        B = random_matrix(83, 101, 1)
        C = repro.multiply(A, B, algorithm=name, steps=2)
        np.testing.assert_allclose(C, A @ B, rtol=1e-9, atol=1e-9)

    def test_by_object(self):
        alg = repro.get_algorithm("s244")
        A = random_matrix(64, 64, 2)
        B = random_matrix(64, 64, 3)
        C = repro.multiply(A, B, algorithm=alg)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("strategy", ["pairwise", "write_once", "streaming"])
    def test_strategies(self, strategy):
        A = random_matrix(50, 50, 4)
        B = random_matrix(50, 50, 5)
        C = repro.multiply(A, B, strategy=strategy, cse=True)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("scheme", ["dfs", "bfs", "hybrid"])
    def test_parallel_path(self, scheme):
        A = random_matrix(120, 120, 6)
        B = random_matrix(120, 120, 7)
        C = repro.multiply(A, B, parallel=True, scheme=scheme, threads=2, steps=2)
        np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)

    def test_reference_interpreter_agrees_with_codegen(self):
        A = random_matrix(71, 45, 8)
        B = random_matrix(45, 63, 9)
        for name in catalog_names():
            alg = repro.get_algorithm(name)
            if alg.apa:
                continue
            c1 = repro.multiply_reference(A, B, alg, steps=2)
            c2 = repro.multiply(A, B, algorithm=alg, steps=2)
            np.testing.assert_allclose(c1, c2, rtol=1e-9, atol=1e-9, err_msg=name)


class TestComposed54:
    def test_composed_schedule_on_rectangular(self):
        sched = [repro.get_algorithm("s336"), repro.get_algorithm("s363"),
                 repro.get_algorithm("s633")]
        A = random_matrix(111, 67, 0)
        B = random_matrix(67, 90, 1)
        C = repro.multiply_schedule(A, B, sched)
        np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8)

    def test_exponent_bookkeeping(self):
        from repro.core.cost import composed_exponent

        r = repro.get_algorithm("s336").rank
        omega = composed_exponent([(3, 3, 6), (3, 6, 3), (6, 3, 3)], [r] * 3)
        assert 2.5 < omega < 3.0


class TestCutoffIntegration:
    def test_measured_curve_drives_steps(self):
        from repro.bench.machine import measure_gemm_curve, recommended_steps

        curve = measure_gemm_curve([16, 32, 64, 128], threads=1, trials=1)
        s = recommended_steps(curve, 128, 2, 1 / 7, max_steps=3)
        assert 0 <= s <= 3

    def test_cutoff_policy_applies(self):
        alg = repro.get_algorithm("strassen")
        A = random_matrix(64, 64, 1)
        C = repro.multiply_reference(
            A, A, alg, cutoff=repro.CutoffPolicy(max_steps=2, min_dim=16)
        )
        np.testing.assert_allclose(C, A @ A, rtol=1e-10, atol=1e-10)


class TestAccuracyStory:
    def test_exact_vs_apa_error_separation(self):
        """Exact fast algorithms sit at rounding error; APA algorithms are
        visibly approximate (paper Section 2.2.3)."""
        A = random_matrix(81, 54, 2)
        B = random_matrix(54, 60, 3)
        ref = A @ B
        exact_err = []
        for name in ("strassen", "s233", "s333"):
            C = repro.multiply(A, B, algorithm=name, steps=2)
            exact_err.append(np.linalg.norm(C - ref) / np.linalg.norm(ref))
        bini = repro.multiply(A, B, algorithm="bini322", steps=1)
        apa_err = np.linalg.norm(bini - ref) / np.linalg.norm(ref)
        assert max(exact_err) < 1e-10 < apa_err


class TestRunnerIntegration:
    def test_mini_fig5_run(self):
        algs = {
            "dgemm": None,
            "strassen": repro.get_algorithm("strassen"),
            "s424": repro.get_algorithm("s424"),
        }
        rows = run_sequential(algs, [workloads.square(128)], step_options=(1,),
                              trials=1, quiet=True)
        assert len(rows) == 3
