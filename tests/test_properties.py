"""Cross-module property-based tests: the invariants that tie the
framework together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import classical, get_algorithm
from repro.codegen import compile_algorithm
from repro.core import compose, transforms
from repro.core.recursion import multiply
from repro.core.stability import stability_factors
from repro.util.matrices import random_matrix

CATALOG = ["strassen", "winograd", "hk223", "hk224", "s233", "s234", "s333"]


class TestTransformThenExecute:
    """Any Prop-2.3 orbit member must still multiply correctly end-to-end
    (not just pass the tensor residual check)."""

    @given(st.sampled_from(CATALOG), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_scaled_algorithm_multiplies(self, name, seed):
        rng = np.random.default_rng(seed)
        alg = get_algorithm(name)
        dx = rng.uniform(0.5, 2.0, alg.rank)
        dy = rng.uniform(0.5, 2.0, alg.rank)
        scaled = transforms.scale_columns(alg, dx, dy)
        A = random_matrix(13, 17, seed % 100)
        B = random_matrix(17, 11, seed % 100 + 1)
        C = multiply(A, B, scaled, steps=1)
        np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8)

    @given(st.sampled_from(CATALOG), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_permuted_algorithm_multiplies(self, name, seed):
        rng = np.random.default_rng(seed)
        alg = get_algorithm(name)
        perm = rng.permutation(alg.rank)
        permuted = transforms.permute_columns(alg, perm)
        A = random_matrix(12, 12, seed % 97)
        B = random_matrix(12, 12, seed % 97 + 1)
        C = multiply(A, B, permuted, steps=2)
        np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8)


class TestCompositionExecutes:
    @given(st.sampled_from(["strassen", "hk223", "s233"]),
           st.integers(1, 3), st.sampled_from(["m", "k", "n"]))
    @settings(max_examples=12, deadline=None)
    def test_sum_with_classical_multiplies(self, name, extra, axis):
        alg = get_algorithm(name)
        m, k, n = alg.base_case
        if axis == "n":
            big = compose.direct_sum_n(alg, classical(m, k, extra))
        elif axis == "m":
            big = compose.direct_sum_m(alg, classical(extra, k, n))
        else:
            big = compose.direct_sum_k(alg, classical(m, extra, n))
        A = random_matrix(big.m * 5 + 1, big.k * 5 + 2, extra)
        B = random_matrix(big.k * 5 + 2, big.n * 5 + 1, extra + 1)
        C = multiply(A, B, big, steps=1)
        np.testing.assert_allclose(C, A @ B, rtol=1e-8, atol=1e-8)

    @given(st.sampled_from(["strassen", "hk223"]),
           st.sampled_from(["strassen", "classical212"]))
    @settings(max_examples=6, deadline=None)
    def test_kron_compiles_and_runs(self, a, b):
        f = get_algorithm(a)
        g = get_algorithm(b) if b != "classical212" else classical(2, 1, 2)
        big = compose.kron(f, g)
        mult = compile_algorithm(big)
        A = random_matrix(big.m * 3, big.k * 3, 0)
        B = random_matrix(big.k * 3, big.n * 3, 1)
        np.testing.assert_allclose(mult(A, B, steps=1), A @ B,
                                   rtol=1e-8, atol=1e-8)


class TestInvariantBookkeeping:
    @given(st.sampled_from(CATALOG))
    @settings(max_examples=7, deadline=None)
    def test_rank_bounds(self, name):
        """Strassen-Winograd lower bound: R >= 2mn + 2n? ... we assert the
        universal bounds: mn <= R <= mkn for exact algorithms."""
        alg = get_algorithm(name)
        m, k, n = alg.base_case
        assert m * n <= alg.rank <= m * k * n

    @given(st.sampled_from(CATALOG))
    @settings(max_examples=7, deadline=None)
    def test_exponent_below_three(self, name):
        alg = get_algorithm(name)
        assert 2.0 < alg.exponent < 3.0

    @given(st.sampled_from(CATALOG), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_stability_factors_invariant_under_column_permutation(self, name, seed):
        alg = get_algorithm(name)
        rng = np.random.default_rng(seed)
        permuted = transforms.permute_columns(alg, rng.permutation(alg.rank))
        f1 = stability_factors(alg)
        f2 = stability_factors(permuted)
        assert f1.emax == pytest.approx(f2.emax)

    @given(st.sampled_from(CATALOG))
    @settings(max_examples=7, deadline=None)
    def test_permutation_family_preserves_nnz_total(self, name):
        """Props 2.1/2.2 permute factor entries; total nnz is invariant."""
        alg = get_algorithm(name)
        total = sum(alg.nnz())
        for member in transforms.permutation_family(alg).values():
            assert sum(member.nnz()) == total


class TestEndToEndAgreement:
    @given(st.sampled_from(CATALOG), st.integers(1, 2),
           st.sampled_from(["pairwise", "write_once", "streaming"]))
    @settings(max_examples=12, deadline=None)
    def test_codegen_equals_interpreter(self, name, steps, strategy):
        alg = get_algorithm(name)
        A = random_matrix(23, 19, 7)
        B = random_matrix(19, 29, 8)
        c_gen = compile_algorithm(alg, strategy)(A, B, steps=steps)
        c_ref = multiply(A, B, alg, steps=steps)
        np.testing.assert_allclose(c_gen, c_ref, rtol=1e-9, atol=1e-9)
