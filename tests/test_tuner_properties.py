"""Property-based randomized tests for the tuner subsystem.

Hypothesis drives three families of invariants the hand-picked cases in
``test_tuner.py`` cannot cover:

- **cache round-trip**: any plan stored under any well-formed key is
  recovered bit-identically after a save/load cycle;
- **nearest-shape fallback**: the returned entry is the log-space-closest
  candidate, and enlarging the radius is monotone (a hit never disappears,
  the distance never increases);
- **dispatch correctness**: ``tuner.matmul`` equals numpy for random
  shapes, dtypes and policies -- with float32 error asserted against the
  a-priori stability bound of ``core.stability`` (the acceptance criterion
  for the dtype-specific candidate space).
"""

import json
import math
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import tuner
from repro.algorithms import get_algorithm
from repro.core.stability import error_bound
from repro.tuner.cache import COMPAT_SCHEMAS, SCHEMA_VERSION, PlanCache
from repro.tuner.space import PLAN_SCHEMES, Plan, subgroup_candidates

#: catalog names safe to execute at small sizes in property tests
ALGORITHMS = ["strassen", "winograd", "s234", "s333", "hk223"]

DTYPES = ["float32", "float64"]

dims = st.integers(min_value=1, max_value=4096)
threads_st = st.integers(min_value=1, max_value=16)

plans = st.builds(
    Plan,
    algorithm=st.sampled_from(ALGORITHMS + ["dgemm"]),
    steps=st.integers(min_value=0, max_value=3),
    scheme=st.sampled_from(PLAN_SCHEMES),
    strategy=st.sampled_from(["pairwise", "write_once", "streaming"]),
    threads=threads_st,
    min_leaf=st.sampled_from([32, 64, 128]),
)


@st.composite
def subgroup_plans(draw):
    """Valid hybrid-subgroup plans: P' drawn from the divisors of the
    (composite) thread count, or ``None`` for the execution-time default."""
    threads = draw(st.sampled_from([2, 4, 6, 8, 12, 16]))
    sub = draw(st.sampled_from([None] + subgroup_candidates(threads)))
    return Plan(
        algorithm=draw(st.sampled_from(ALGORITHMS)),
        steps=draw(st.integers(min_value=1, max_value=3)),
        scheme="hybrid-subgroup",
        strategy=draw(st.sampled_from(["pairwise", "write_once",
                                       "streaming"])),
        threads=threads,
        min_leaf=draw(st.sampled_from([32, 64, 128])),
        subgroup=sub,
    )


def _log_dist(a, b):
    return math.sqrt(sum(math.log(x / y) ** 2 for x, y in zip(a, b)))


class TestCacheRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, dtype=st.sampled_from(DTYPES),
           threads=threads_st, plan=plans,
           seconds=st.floats(min_value=1e-6, max_value=1e3),
           )
    def test_put_save_load_get(self, m, k, n, dtype, threads, plan, seconds):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "plans.json"
            cache = PlanCache(path)
            cache.put(m, k, n, dtype, threads, plan, seconds=seconds)
            assert cache.save()
            fresh = PlanCache(path)
            assert fresh.get(m, k, n, dtype, threads) == plan
            ent = fresh.entry(m, k, n, dtype, threads)
            assert ent["seconds"] == seconds
            assert ent["fingerprint"] == cache.fingerprint

    @settings(max_examples=25, deadline=None)
    @given(m=dims, k=dims, n=dims, plan=plans)
    def test_foreign_fingerprint_never_resolves(self, m, k, n, plan):
        """Whatever the key, an entry stamped elsewhere is bypassed."""
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "plans.json"
            writer = PlanCache(path, fingerprint="other-machine")
            writer.put(m, k, n, "float64", 1, plan)
            assert writer.save()
            reader = PlanCache(path)  # this machine's fingerprint
            assert reader.get(m, k, n, "float64", 1) is None
            assert reader.nearest(m, k, n, "float64", 1) is None
            assert reader.stale_keys()  # visible to invalidation, though


class TestSchemaV5Migration:
    """The v4 -> v5 migration path and the new entry fields."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(m=dims, k=dims, n=dims, threads=threads_st,
           plan=subgroup_plans(),
           seconds=st.floats(min_value=1e-6, max_value=1e3))
    def test_pprime_round_trip(self, tmp_path, m, k, n, threads, plan,
                               seconds):
        """Any P'-carrying plan survives a save/load cycle bit-identically,
        and the entry records scheme + P' as explicit fields."""
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put(m, k, n, "float64", threads, plan, seconds=seconds)
        assert cache.save()
        fresh = PlanCache(path)
        assert fresh.get(m, k, n, "float64", threads) == plan
        ent = fresh.entry(m, k, n, "float64", threads)
        assert ent["scheme"] == plan.scheme
        assert ent["subgroup"] == plan.subgroup
        assert ent["plan"]["subgroup"] == plan.subgroup

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(m=dims, k=dims, n=dims, plan=plans,
           schema=st.sampled_from(COMPAT_SCHEMAS))
    def test_v4_files_load_as_stale_schema(self, tmp_path, m, k, n, plan,
                                           schema):
        """A pre-v5 cache file loads without error; its entries are
        visible (show/invalidate) but treated as stale-schema: no lookup
        ever serves them, exactly like a foreign fingerprint."""
        path = tmp_path / "plans.json"
        writer = PlanCache(path)  # this machine's fingerprint...
        writer.put(m, k, n, "float64", 1, plan)
        writer.save()
        raw = json.loads(path.read_text())
        raw["schema"] = schema  # ...but an old schema stamp
        for ent in raw["entries"].values():
            ent.pop("scheme", None)
            ent.pop("subgroup", None)
        path.write_text(json.dumps(raw))

        reader = PlanCache(path)
        assert len(reader) == 1                 # loaded, not dropped
        assert reader.get(m, k, n, "float64", 1) is None
        assert reader.nearest(m, k, n, "float64", 1) is None
        assert len(reader.stale_keys()) == 1    # ...and flagged
        # invalidation clears them; the rewritten file is v5
        assert reader.invalidate(stale_only=True)
        assert reader.save()
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION
        assert len(PlanCache(path)) == 0

    def test_unknown_future_schema_still_starts_fresh(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 1,
                                    "entries": {"1x1x1:float64:1t": {}}}))
        assert len(PlanCache(path)) == 0


class TestCrossThreadNearest:
    shapes = st.tuples(
        st.integers(min_value=64, max_value=2048),
        st.integers(min_value=64, max_value=2048),
        st.integers(min_value=64, max_value=2048),
    )

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=shapes, exact=shapes, cross=st.lists(shapes, min_size=1,
                                                      max_size=4),
           cross_threads=st.sampled_from([1, 2, 8, 16]))
    def test_exact_thread_hit_always_beats_transfer(self, tmp_path, query,
                                                    exact, cross,
                                                    cross_threads):
        """However close (even bit-identical in shape) an entry from
        another thread count is, its scaled cost never beats an
        exact-thread hit within the radius."""
        threads = 4
        cache = PlanCache(tmp_path / "plans.json")
        exact_plan = Plan(algorithm="winograd", steps=2, scheme="hybrid",
                          threads=threads)
        cache.put(*exact, "float64", threads, exact_plan)
        for i, shp in enumerate(cross):
            cache.put(*shp, "float64", cross_threads,
                      Plan(algorithm="strassen", steps=1 + i % 3,
                           scheme="bfs", threads=cross_threads))
        got = cache.nearest(*query, "float64", threads)
        if self._dist(exact, query) <= 1.0:
            assert got == exact_plan
        elif got is not None:
            # only a transfer can answer -- and it must be retargeted
            assert got.threads == threads

    @staticmethod
    def _dist(a, b):
        return math.sqrt(sum(math.log(x / y) ** 2 for x, y in zip(a, b)))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=shapes, entry=shapes,
           entry_threads=st.sampled_from([1, 2, 3, 8, 16]),
           query_threads=st.sampled_from([1, 2, 4, 6]),
           plan=subgroup_plans())
    def test_transfer_plans_are_always_valid(self, tmp_path, query, entry,
                                             entry_threads, query_threads,
                                             plan):
        """Whatever P' the source entry carries, a cross-thread transfer
        comes back executable at the queried thread count: Plan validation
        (P' | threads) passes by construction."""
        cache = PlanCache(tmp_path / "plans.json")
        plan = tuner.retarget_plan(plan, entry_threads)
        cache.put(*entry, "float64", entry_threads, plan)
        got = cache.nearest(*query, "float64", query_threads)
        if got is not None:
            assert got.threads == query_threads
            if got.subgroup is not None:
                assert query_threads % got.subgroup == 0
            assert got.algorithm == plan.algorithm
            assert got.steps == plan.steps

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=shapes, entry=shapes,
           entry_threads=st.sampled_from([2, 8]))
    def test_transfer_pays_a_distance_penalty(self, tmp_path, query, entry,
                                              entry_threads):
        """The cross-thread fallback is strictly more conservative than
        the same-thread one: any shape that misses at the entry's own
        thread count also misses across thread counts."""
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(*entry, "float64", entry_threads,
                  Plan(algorithm="strassen", steps=1, scheme="dfs",
                       threads=entry_threads))
        same = cache.nearest(*query, "float64", entry_threads)
        crossed = cache.nearest(*query, "float64", 4)
        if same is None:
            assert crossed is None
        # and a transfer within range is the same knowledge, retargeted
        if crossed is not None:
            assert crossed.algorithm == "strassen"
            assert crossed.threads == 4


class TestNearestMonotonicity:
    shapes = st.tuples(
        st.integers(min_value=64, max_value=2048),
        st.integers(min_value=64, max_value=2048),
        st.integers(min_value=64, max_value=2048),
    )

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=shapes, entries=st.lists(shapes, min_size=1, max_size=6))
    def test_returns_the_closest_entry_within_radius(self, tmp_path, query,
                                                     entries):
        cache = PlanCache(tmp_path / "plans.json")
        for i, (m, k, n) in enumerate(entries):
            cache.put(m, k, n, "float64", 1,
                      Plan(algorithm="strassen", steps=1 + i % 3))
        got = cache.nearest(*query, "float64", 1, radius=1.0)
        dists = sorted(_log_dist(e, query) for e in set(entries))
        if dists[0] > 1.0:
            assert got is None
        else:
            assert got is not None
            # the plan returned belongs to an entry at the minimal distance
            winners = {e for e in entries
                       if _log_dist(e, query) == pytest.approx(dists[0])}
            assert got in {cache.get(*w, "float64", 1) for w in winners}

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=shapes, entry=shapes,
           r1=st.floats(min_value=0.05, max_value=2.0),
           r2=st.floats(min_value=0.05, max_value=2.0))
    def test_monotone_in_radius(self, tmp_path, query, entry, r1, r2):
        """A hit at a small radius never disappears at a larger one."""
        r1, r2 = sorted((r1, r2))
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(*entry, "float64", 1, Plan(algorithm="winograd", steps=1))
        small = cache.nearest(*query, "float64", 1, radius=r1)
        large = cache.nearest(*query, "float64", 1, radius=r2)
        if small is not None:
            assert large == small
        # and the radius-bound itself is honored
        if large is not None:
            assert _log_dist(entry, query) <= r2 + 1e-9


class TestDispatchCorrectness:
    shapes = st.tuples(
        st.integers(min_value=130, max_value=300),
        st.integers(min_value=130, max_value=300),
        st.integers(min_value=130, max_value=300),
    )

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(shape=shapes, dtype=st.sampled_from(DTYPES),
           policy=st.sampled_from(["never", "online"]),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_matmul_matches_numpy(self, tmp_path, shape, dtype, policy,
                                  seed):
        p, q, r = shape
        A, B = tuner.tuning_operands(p, q, r, dtype=dtype, seed=seed)
        cache = PlanCache(tmp_path / "plans.json")
        tune = (tuner.OnlineTunePolicy(shortlist=2, min_trials=1,
                                       persist=False)
                if policy == "online" else "never")
        C = tuner.matmul(A, B, threads=1, cache=cache, tune=tune)
        assert C.dtype == np.dtype(dtype)
        ref = A.astype(np.float64) @ B.astype(np.float64)
        rel = np.linalg.norm(C.astype(np.float64) - ref) / np.linalg.norm(ref)
        plan, _ = tuner.get_plan(p, q, r, dtype=dtype, threads=1,
                                 cache=cache)
        eps = float(np.finfo(np.dtype(dtype)).eps)
        if plan.is_dgemm:
            bound = q * eps
        else:
            # the acceptance criterion: observed float32 (and float64)
            # dispatch error within the a-priori stability bound
            bound = error_bound(get_algorithm(plan.algorithm), plan.steps,
                                q, dtype)
        assert rel <= bound

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(shape=shapes, algorithm=st.sampled_from(ALGORITHMS),
           steps=st.integers(min_value=1, max_value=2),
           dtype=st.sampled_from(DTYPES))
    def test_planted_plan_executes_correctly(self, tmp_path, shape,
                                             algorithm, steps, dtype):
        """Any cached plan -- not just cost-model favourites -- dispatches
        to a correct product (dynamic peeling covers ragged shapes)."""
        p, q, r = shape
        cache = PlanCache(tmp_path / "plans.json")
        plan = Plan(algorithm=algorithm, steps=steps, min_leaf=16)
        cache.put(p, q, r, dtype, 1, plan)
        A, B = tuner.tuning_operands(p, q, r, dtype=dtype, seed=3)
        got, source = tuner.get_plan(p, q, r, dtype=dtype, threads=1,
                                     cache=cache)
        assert (got, source) == (plan, "cache")
        C = tuner.matmul(A, B, threads=1, cache=cache)
        ref = A.astype(np.float64) @ B.astype(np.float64)
        rel = np.linalg.norm(C.astype(np.float64) - ref) / np.linalg.norm(ref)
        assert rel <= error_bound(get_algorithm(algorithm), steps, q, dtype)


class TestFloat32Space:
    @settings(max_examples=15, deadline=None)
    @given(shape=st.tuples(
        st.integers(min_value=128, max_value=4096),
        st.integers(min_value=128, max_value=4096),
        st.integers(min_value=128, max_value=4096),
    ))
    def test_candidates_respect_stability_budget(self, shape):
        """Every float32 candidate stays within the growth bound -- the
        deeper recursion the space allows is stability-bounded, never
        free."""
        from repro.core.stability import growth_bound, stability_factors

        p, q, r = shape
        for plan in tuner.enumerate_plans(p, q, r, dtype="float32"):
            if plan.is_dgemm:
                continue
            alg = get_algorithm(plan.algorithm)
            assert stability_factors(alg).growth(plan.steps) <= \
                growth_bound("float32")

    @settings(max_examples=15, deadline=None)
    @given(shape=st.tuples(
        st.integers(min_value=256, max_value=4096),
        st.integers(min_value=256, max_value=4096),
        st.integers(min_value=256, max_value=4096),
    ))
    def test_float32_space_at_least_as_deep(self, shape):
        """Lower precision never *shrinks* the space except where the
        stability budget binds: for every algorithm the float64 space
        recurses into, the float32 space goes at least as deep (smaller
        leaves are viable, Huang et al.) -- unless
        ``max_stable_steps(alg, "float32")`` caps it lower, which is the
        bound doing its job, not the space regressing."""
        from repro.core.stability import max_stable_steps

        p, q, r = shape
        depth64 = {}
        for pl in tuner.enumerate_plans(p, q, r, dtype="float64"):
            if not pl.is_dgemm:
                depth64[pl.algorithm] = max(depth64.get(pl.algorithm, 0),
                                            pl.steps)
        depth32 = {}
        for pl in tuner.enumerate_plans(p, q, r, dtype="float32"):
            if not pl.is_dgemm:
                depth32[pl.algorithm] = max(depth32.get(pl.algorithm, 0),
                                            pl.steps)
        for name, d64 in depth64.items():
            cap32 = max_stable_steps(get_algorithm(name), "float32")
            assert depth32.get(name, 0) >= min(d64, cap32)
