"""Tests for the native-C chain backend (``repro.codegen.cbackend``).

The C backend must agree with the Python interpreter and the classical
product for every algorithm, strategy-equivalent configuration, recursion
depth and awkward (peeled) shape — it is the same algorithm, only the
addition chains run as fused compiled loops.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.codegen import cbackend, compile_algorithm
from repro.core.recursion import multiply as multiply_reference

pytestmark = pytest.mark.skipif(
    not cbackend.available(), reason="no working C compiler on this machine"
)

RNG = np.random.default_rng(33)
ALGOS = ["strassen", "winograd", "hk223", "hk224", "s233", "s333", "s424"]


def _rand(p, q):
    return RNG.standard_normal((p, q))


# ----------------------------------------------------------- source level
class TestSourceGeneration:
    def test_source_compiles_and_exports(self):
        cc = cbackend.compile_chains("strassen")
        for fn in ("form_S", "form_T", "form_C"):
            assert hasattr(cc.lib, fn)

    def test_source_is_deterministic(self):
        alg = get_algorithm("strassen")
        assert (cbackend.generate_c_source(alg)
                == cbackend.generate_c_source(alg))

    def test_source_mentions_algorithm(self):
        alg = get_algorithm("s424")
        src = cbackend.generate_c_source(alg)
        assert "<4,2,4>" in src and "rank 26" in src

    def test_unit_coefficients_have_no_multiply(self):
        # Strassen is all +-1: the emitted chain arithmetic (the `[j] = ...`
        # assignment lines) must be pure add/subtract, no scalar multiplies
        src = cbackend.generate_c_source(get_algorithm("strassen"))
        rhs_lines = [ln.split("=", 1)[1] for ln in src.splitlines()
                     if "[j] =" in ln]
        assert rhs_lines, "no chain assignments emitted"
        assert all("*" not in rhs for rhs in rhs_lines)

    def test_cse_reduces_loop_count_or_matches(self):
        alg = get_algorithm("s333")
        plain = cbackend.generate_c_source(alg, cse=False)
        with_cse = cbackend.generate_c_source(alg, cse=True)
        # CSE introduces definition buffers: slab rows must not shrink
        assert "defs first: 0/0" in plain
        assert "defs first: 0/0" not in with_cse

    def test_compile_cache_reuses_library(self):
        a = cbackend.compile_chains("strassen")
        b = cbackend.compile_chains("strassen")
        assert a is b  # lru-cached wrapper

    def test_source_cache_by_content(self):
        alg = get_algorithm("strassen")
        lib1 = cbackend._compile_source(cbackend.generate_c_source(alg))
        lib2 = cbackend._compile_source(cbackend.generate_c_source(alg))
        assert lib1 is lib2


# ------------------------------------------------------------ correctness
class TestCorrectness:
    @pytest.mark.parametrize("name", ALGOS)
    def test_exact_one_step(self, name):
        alg = get_algorithm(name)
        m, k, n = alg.base_case
        A, B = _rand(8 * m, 8 * k), _rand(8 * k, 8 * n)
        C = cbackend.multiply(A, B, name, steps=1)
        np.testing.assert_allclose(C, A @ B, rtol=0, atol=1e-10 * np.abs(A @ B).max())

    @pytest.mark.parametrize("name", ["strassen", "s333", "s424"])
    @pytest.mark.parametrize("steps", [1, 2, 3])
    def test_depths(self, name, steps):
        alg = get_algorithm(name)
        m, k, n = alg.base_case
        s = max(m, k, n) ** steps
        A, B = _rand(2 * s, s), _rand(s, 3 * s)
        C = cbackend.multiply(A, B, name, steps=steps)
        np.testing.assert_allclose(C, A @ B, atol=1e-9)

    @pytest.mark.parametrize("shape", [(63, 61, 59), (17, 31, 13), (100, 7, 100)])
    def test_peeled_shapes(self, shape):
        p, q, r = shape
        A, B = _rand(p, q), _rand(q, r)
        C = cbackend.multiply(A, B, "strassen", steps=2)
        np.testing.assert_allclose(C, A @ B, atol=1e-10)

    @pytest.mark.parametrize("name", ["strassen", "s333", "hk223"])
    def test_cse_variant_agrees_with_plain(self, name):
        alg = get_algorithm(name)
        m, k, n = alg.base_case
        A, B = _rand(12 * m, 12 * k), _rand(12 * k, 12 * n)
        plain = cbackend.multiply(A, B, name, steps=1, cse=False)
        fused = cbackend.multiply(A, B, name, steps=1, cse=True)
        np.testing.assert_allclose(plain, fused, atol=1e-11)

    def test_matches_interpreter_and_codegen(self):
        alg = get_algorithm("s424")
        A, B = _rand(160, 80), _rand(80, 160)
        ref = multiply_reference(A, B, alg, steps=2)
        gen = compile_algorithm(alg)(A, B, steps=2)
        nat = cbackend.multiply(A, B, "s424", steps=2)
        np.testing.assert_allclose(nat, ref, atol=1e-10)
        np.testing.assert_allclose(nat, gen, atol=1e-10)

    def test_small_matrix_falls_back_to_dot(self):
        A, B = _rand(1, 1), _rand(1, 1)
        C = cbackend.multiply(A, B, "strassen", steps=1)
        np.testing.assert_allclose(C, A @ B)

    def test_accepts_fortran_and_integer_input(self):
        A = np.asfortranarray(RNG.integers(0, 5, (32, 32)))
        B = RNG.integers(0, 5, (32, 32))
        C = cbackend.multiply(A, B, "strassen", steps=1)
        np.testing.assert_allclose(C, A @ B)

    def test_explicit_algorithm_object(self):
        alg = get_algorithm("winograd")
        cc = cbackend.CompiledChains(alg)
        A, B = _rand(64, 64), _rand(64, 64)
        np.testing.assert_allclose(cc(A, B, steps=2), A @ B, atol=1e-10)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            cbackend.multiply(_rand(4, 5), _rand(6, 4), "strassen")


# ------------------------------------------------------------------ dtypes
class TestDtypeContract:
    """The kernels are float64-only; the driver must return
    ``np.result_type(A, B)`` (never a silent upcast) and reject result
    dtypes double cannot represent."""

    def test_float32_in_float32_out(self):
        A = _rand(48, 48).astype(np.float32)
        B = _rand(48, 48).astype(np.float32)
        C = cbackend.multiply(A, B, "strassen", steps=2)
        assert C.dtype == np.float32
        np.testing.assert_allclose(C, A @ B, rtol=1e-4, atol=1e-4)

    def test_mixed_precision_promotes(self):
        A = _rand(32, 32).astype(np.float32)
        B = _rand(32, 32)  # float64
        C = cbackend.multiply(A, B, "strassen", steps=1)
        assert C.dtype == np.float64

    def test_integer_inputs_return_integer_result_type(self):
        A = RNG.integers(0, 5, (32, 32))
        B = RNG.integers(0, 5, (32, 32))
        C = cbackend.multiply(A, B, "strassen", steps=1)
        assert C.dtype == np.result_type(A, B)
        np.testing.assert_array_equal(C, A @ B)

    def test_big_integer_product_raises_instead_of_rounding(self):
        # products past 2^53 cannot round-trip through the float64 kernels:
        # casting back would silently truncate (or wrap to INT64_MIN)
        A = np.full((4, 4), 2**31 - 1, dtype=np.int64)
        B = np.full((4, 4), 2**31 - 3, dtype=np.int64)
        with pytest.raises(ValueError, match="2\\^53"):
            cbackend.multiply(A, B, "strassen", steps=1)

    def test_intermediate_overflow_raises_even_when_result_fits(self):
        # entries ~2^22 at n=64, steps=2: every exact product entry fits in
        # 2^53, but Strassen's intermediate (A11+A22)@(B11+B22) sums do not
        # -- the a-priori growth bound must reject this a posteriori-clean-
        # looking case instead of returning integers quietly off by a few
        A = np.full((64, 64), 2**22, dtype=np.int64)
        B = np.full((64, 64), 2**22, dtype=np.int64)
        assert (A.astype(object) @ B.astype(object)).max() < 2**53
        with pytest.raises(ValueError, match="intermediates"):
            cbackend.multiply(A, B, "strassen", steps=2)

    def test_complex_routed_away_loudly(self):
        A = _rand(8, 8) + 1j * _rand(8, 8)
        with pytest.raises(ValueError, match="float64"):
            cbackend.multiply(A, A, "strassen", steps=1)

    @pytest.mark.skipif(not hasattr(np, "longdouble")
                        or np.dtype(np.longdouble).itemsize <= 8,
                        reason="no extended-precision longdouble here")
    def test_extended_precision_routed_away_loudly(self):
        A = _rand(8, 8).astype(np.longdouble)
        with pytest.raises(ValueError, match="float64"):
            cbackend.multiply(A, A, "strassen", steps=1)


# ---------------------------------------------------------------- aliases
class TestAliasHandling:
    def test_aliased_chains_are_views_not_copies(self):
        # Strassen has S3=A11, S4=A22, T2=B11, T5=B22: the slab must hold
        # strictly fewer rows than the rank
        cc = cbackend.compile_chains("strassen")
        assert cc._s["slots"] < cc.algorithm.rank
        assert cc._t["slots"] < cc.algorithm.rank
        aliases = [lay for lay in cc._s["layout"] if lay[0] == "alias"]
        assert len(aliases) >= 2

    def test_slab_layout_consistent_with_source(self):
        cc = cbackend.compile_chains("strassen")
        assert f"S={cc._s['slots']}" in cc.source
        assert f"T={cc._t['slots']}" in cc.source


class TestCompilerGating:
    def test_available_is_cached_bool(self):
        assert isinstance(cbackend.available(), bool)

    def test_missing_compiler_raises_cleanly(self, monkeypatch):
        monkeypatch.setattr(cbackend, "available", lambda: False)
        with pytest.raises(RuntimeError, match="no working C compiler"):
            cbackend.compile_chains("strassen")
