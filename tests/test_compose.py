"""Tests for algorithm composition (repro.core.compose)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import classical, get_algorithm, strassen
from repro.core import compose


def small_algorithms():
    return [
        classical(1, 1, 2),
        classical(2, 1, 1),
        classical(1, 2, 1),
        classical(2, 2, 1),
        strassen(),
    ]


class TestKron:
    def test_dims_and_rank(self):
        f = strassen()
        g = classical(1, 1, 2)
        fg = compose.kron(f, g)
        assert fg.base_case == (2, 2, 4)
        assert fg.rank == 14
        fg.validate()

    def test_strassen_squared(self):
        ss = compose.kron(strassen(), strassen())
        assert ss.base_case == (4, 4, 4)
        assert ss.rank == 49
        ss.validate()

    @given(st.sampled_from(range(5)), st.sampled_from(range(5)))
    @settings(max_examples=15, deadline=None)
    def test_kron_exactness_property(self, i, j):
        algs = small_algorithms()
        fg = compose.kron(algs[i], algs[j])
        fg.validate()

    def test_apa_flag_propagates(self):
        bini = get_algorithm("bini322")
        out = compose.kron(bini, classical(1, 1, 2))
        assert out.apa

    def test_name_default(self):
        fg = compose.kron(strassen(), classical(1, 1, 2))
        assert "strassen" in fg.name


class TestDirectSums:
    def test_sum_n(self):
        alg = compose.direct_sum_n(strassen(), classical(2, 2, 1))
        assert alg.base_case == (2, 2, 3)
        assert alg.rank == 11
        alg.validate()

    def test_sum_m(self):
        alg = compose.direct_sum_m(strassen(), classical(1, 2, 2))
        assert alg.base_case == (3, 2, 2)
        assert alg.rank == 11
        alg.validate()

    def test_sum_k(self):
        alg = compose.direct_sum_k(strassen(), classical(2, 1, 2))
        assert alg.base_case == (2, 3, 2)
        assert alg.rank == 11
        alg.validate()

    def test_sum_n_dim_mismatch(self):
        with pytest.raises(ValueError, match="m,k must agree"):
            compose.direct_sum_n(strassen(), classical(3, 2, 1))

    def test_sum_m_dim_mismatch(self):
        with pytest.raises(ValueError, match="k,n must agree"):
            compose.direct_sum_m(strassen(), classical(1, 3, 2))

    def test_sum_k_dim_mismatch(self):
        with pytest.raises(ValueError, match="m,n must agree"):
            compose.direct_sum_k(strassen(), classical(3, 1, 2))

    def test_nested_sums(self):
        # <2,2,5> = (<2,2,2> x <1,1,2>) (+)n <2,2,1>, the HK rank 18
        hk224 = compose.kron(strassen(), classical(1, 1, 2))
        hk225 = compose.direct_sum_n(hk224, classical(2, 2, 1))
        assert hk225.base_case == (2, 2, 5)
        assert hk225.rank == 18
        hk225.validate()

    @given(st.sampled_from(["m", "k", "n"]), st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_sum_with_classical_pieces(self, axis, extra):
        s = strassen()
        if axis == "n":
            alg = compose.direct_sum_n(s, classical(2, 2, extra))
            assert alg.base_case == (2, 2, 2 + extra)
        elif axis == "m":
            alg = compose.direct_sum_m(s, classical(extra, 2, 2))
            assert alg.base_case == (2 + extra, 2, 2)
        else:
            alg = compose.direct_sum_k(s, classical(2, extra, 2))
            assert alg.base_case == (2, 2 + extra, 2)
        assert alg.rank == 7 + 4 * extra
        alg.validate()


class TestCompositionIdentities:
    def test_rank_multiplies_under_kron(self):
        a = get_algorithm("hk223")
        b = classical(1, 2, 1)
        assert compose.kron(a, b).rank == a.rank * b.rank

    def test_rank_adds_under_sums(self):
        a = get_algorithm("hk223")
        b = classical(2, 2, 4)
        assert compose.direct_sum_n(a, b).rank == a.rank + b.rank

    def test_kron_associative_in_dims(self):
        a, b, c = strassen(), classical(1, 1, 2), classical(1, 2, 1)
        left = compose.kron(compose.kron(a, b), c)
        right = compose.kron(a, compose.kron(b, c))
        assert left.base_case == right.base_case
        assert left.rank == right.rank
        left.validate()
        right.validate()
