"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen, winograd


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20150207)


def catalog_names() -> list[str]:
    """Every registry name expected to resolve in this repository."""
    return [
        "strassen", "winograd", "hk223", "hk224", "hk225",
        "s233", "s234", "s244", "s333", "s334", "s344", "s336",
        "classical222", "classical234",
    ]


def exact_catalog() -> list:
    """All exact algorithms (APA excluded), for correctness sweeps."""
    out = []
    for name in catalog_names():
        alg = get_algorithm(name)
        if not alg.apa:
            out.append(alg)
    return out


@pytest.fixture(scope="session")
def all_exact_algorithms():
    return exact_catalog()


@pytest.fixture(scope="session")
def strassen_alg():
    return strassen()


@pytest.fixture(scope="session")
def winograd_alg():
    return winograd()


@pytest.fixture(scope="session")
def classical222():
    return classical(2, 2, 2)
