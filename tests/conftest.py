"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import classical, get_algorithm, strassen, winograd

#: worker-thread count the multicore tier exercises; single-core boxes can
#: still run the tier by exporting REPRO_TEST_THREADS (thread pools work
#: fine oversubscribed, just slower), which is exactly what CI does
MULTICORE_THREADS = 4


def test_thread_budget() -> int:
    """Threads the multicore tier may assume: ``REPRO_TEST_THREADS`` if
    set (CI pins it so the tier is explicit, never a runner accident),
    else the machine's CPU count."""
    env = os.environ.get("REPRO_TEST_THREADS")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return os.cpu_count() or 1


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )
    config.addinivalue_line(
        "markers",
        "multicore: needs >= 4 worker threads (REPRO_TEST_THREADS or "
        "cpu_count); auto-skipped below that so single-core local runs "
        "stay green",
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection resilience test (repro.guard); the CI "
        "chaos job runs exactly these with REPRO_TEST_THREADS=4",
    )


def pytest_collection_modifyitems(config, items):
    budget = test_thread_budget()
    if budget >= MULTICORE_THREADS:
        return
    skip = pytest.mark.skip(
        reason=f"multicore tier needs >= {MULTICORE_THREADS} threads "
               f"(have {budget}); set REPRO_TEST_THREADS={MULTICORE_THREADS} "
               f"to force"
    )
    for item in items:
        if "multicore" in item.keywords:
            item.add_marker(skip)


def run_cli(*argv):
    """Parse ``argv`` with the real CLI parser and dispatch in-process.

    Shared by every CLI-exercising test module; resolves the handler from
    the command name, so new subcommands need no harness changes.
    """
    import io

    from repro import cli

    out = io.StringIO()
    args = cli._build_parser().parse_args(list(argv))
    rc = getattr(cli, f"cmd_{args.command}")(args, out=out)
    return rc, out.getvalue()


class FakeClock:
    """Monotonic clock whose time only moves when a fake plan 'runs' --
    the scripted timing oracle of the policy-convergence tests."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20150207)


def catalog_names() -> list[str]:
    """Every registry name expected to resolve in this repository."""
    return [
        "strassen", "winograd", "hk223", "hk224", "hk225",
        "s233", "s234", "s244", "s333", "s334", "s344", "s336",
        "classical222", "classical234",
    ]


def exact_catalog() -> list:
    """All exact algorithms (APA excluded), for correctness sweeps."""
    out = []
    for name in catalog_names():
        alg = get_algorithm(name)
        if not alg.apa:
            out.append(alg)
    return out


@pytest.fixture(scope="session")
def all_exact_algorithms():
    return exact_catalog()


@pytest.fixture(scope="session")
def strassen_alg():
    return strassen()


@pytest.fixture(scope="session")
def winograd_alg():
    return winograd()


@pytest.fixture(scope="session")
def classical222():
    return classical(2, 2, 2)
