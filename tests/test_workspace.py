"""Tests for repro.core.workspace: arenas, footprints, out=, zero-alloc.

Four claims are pinned down here:

1. the arena mechanics are sound (alignment, stack discipline, graceful
   overflow);
2. the Section 4.1/4.2 footprint formulas really cover the executors'
   demand (zero overflow allocations across schemes, shapes and dtypes);
3. ``out=`` is validated (aliasing/shape/dtype must raise) and honored by
   every execution layer;
4. the arena-backed paths are *bit-for-bit* equal to the allocating paths
   (same ufunc/gemm sequence on the same values), and a warm dispatch call
   performs no allocation larger than 1 MiB (the tracking-allocator
   regression for the steady state).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import get_algorithm
from repro.core.recursion import combine_blocks, multiply, multiply_schedule
from repro.core.workspace import (
    ALIGNMENT,
    Workspace,
    bfs_footprint,
    bfs_level_shapes,
    check_out,
    dfs_footprint,
    dfs_level_shapes,
    needs_scratch,
    scratch_view,
    track_allocations,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.schedules import multiply_parallel
from repro.tuner import Plan, PlanCache
from repro.tuner import matmul as tuner_matmul
from repro.tuner import reset_workspaces
from repro.util.matrices import random_matrix

LARGE = 1 << 20  # the "large allocation" threshold of the steady-state claim


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2) as p:
        yield p


# =========================================================================
# arena mechanics
# =========================================================================
class TestArena:
    def test_take_aligned_contiguous(self):
        ws = Workspace(1 << 16)
        for shape, dtype in [((7, 5), np.float64), ((3, 11), np.float32),
                             ((16, 16), np.float64)]:
            buf = ws.take(shape, dtype)
            assert buf.shape == shape and buf.dtype == dtype
            assert buf.flags.c_contiguous
            assert buf.ctypes.data % ALIGNMENT == 0
        assert ws.overflow_allocations == 0

    def test_takes_are_disjoint(self):
        ws = Workspace(1 << 16)
        a = ws.take((8, 8), np.float64)
        b = ws.take((8, 8), np.float64)
        a[:] = 1.0
        b[:] = 2.0
        assert not np.may_share_memory(a, b)
        np.testing.assert_array_equal(a, np.ones((8, 8)))

    def test_reset_reuses_memory(self):
        ws = Workspace(1 << 16)
        a = ws.take((8, 8), np.float64)
        ptr = a.ctypes.data
        ws.reset()
        b = ws.take((8, 8), np.float64)
        assert b.ctypes.data == ptr  # same bytes handed out again

    def test_mark_release_stack_discipline(self):
        ws = Workspace(1 << 16)
        ws.take((4, 4), np.float64)
        mark = ws.mark()
        inner = ws.take((4, 4), np.float64)
        ws.release(mark)
        again = ws.take((4, 4), np.float64)
        assert again.ctypes.data == inner.ctypes.data

    def test_overflow_falls_back_to_heap(self):
        ws = Workspace(256)
        big = ws.take((64, 64), np.float64)  # 32 KiB >> capacity
        assert big.shape == (64, 64)
        assert ws.overflow_allocations == 1
        big[:] = 1.0  # usable memory, not a view of the arena

    def test_high_water_tracks_peak(self):
        ws = Workspace(1 << 16)
        ws.take((16, 16), np.float64)
        hw = ws.high_water
        assert hw >= 16 * 16 * 8
        ws.reset()
        ws.take((2, 2), np.float64)
        assert ws.high_water == hw  # peak is sticky across resets

    def test_scratch_view_reinterprets(self):
        ws = Workspace(1 << 12)
        raw = ws.take_scratch(512)
        v = scratch_view(raw, (8, 8), np.float64)
        assert v.shape == (8, 8) and v.dtype == np.float64
        v[:] = 3.0
        np.testing.assert_array_equal(
            scratch_view(raw, (8, 8), np.float64), np.full((8, 8), 3.0)
        )

    def test_needs_scratch(self):
        assert not needs_scratch(np.array([0.0, 1.0, -1.0]))
        assert needs_scratch(np.array([1.0, 0.5]))


# =========================================================================
# footprint formulas (Sections 4.1 / 4.2)
# =========================================================================
class TestFootprints:
    def test_dfs_level_shapes_peel(self):
        # <2,2,2> on 130x129x131: core 130/129/130 -> 65x64x65, then 64x64x64 core -> 32x32x32
        shapes = dfs_level_shapes([(2, 2, 2), (2, 2, 2)], 130, 129, 131)
        assert shapes == [(65, 64, 65), (32, 32, 32)]

    def test_dfs_level_shapes_skips_too_small_levels(self):
        # below CutoffPolicy's min_dim the executor refuses the split
        assert dfs_level_shapes([(3, 3, 3)] * 4, 5, 5, 5) == []
        # a composed schedule skips an oversized level but keeps recursing
        # below it on the *unchanged* dims -- the footprint must cover that
        assert dfs_level_shapes([(6, 6, 6), (2, 2, 2)], 10, 10, 10) == [
            (5, 5, 5)
        ]

    def test_bfs_level_shapes_counts(self):
        alg = get_algorithm("strassen")
        levels = bfs_level_shapes(alg.base_case, alg.rank, 2, 64, 64, 64)
        assert levels == [(7, (32, 32, 32)), (49, (16, 16, 16))]

    @pytest.mark.parametrize("name,steps,shape", [
        ("strassen", 2, (96, 96, 96)),
        ("strassen", 2, (97, 99, 101)),
        ("s234", 1, (64, 81, 48)),
        ("s333", 2, (90, 90, 90)),
    ])
    def test_dfs_footprint_covers_recursion(self, name, steps, shape):
        alg = get_algorithm(name)
        p, q, r = shape
        A = random_matrix(p, q, 0)
        B = random_matrix(q, r, 1)
        ws = Workspace.for_recursion([alg.base_case] * steps, p, q, r,
                                     A.dtype, B.dtype)
        out = np.empty((p, r))
        multiply(A, B, alg, steps=steps, out=out, workspace=ws)
        assert ws.overflow_allocations == 0
        assert ws.high_water <= ws.nbytes

    @pytest.mark.parametrize("name,steps,shape", [
        ("strassen", 2, (64, 64, 64)),
        ("strassen", 1, (65, 67, 63)),
        ("s234", 1, (48, 54, 40)),
        ("s333", 2, (54, 54, 54)),
    ])
    def test_bfs_footprint_covers_tree(self, name, steps, shape, pool):
        alg = get_algorithm(name)
        p, q, r = shape
        A = random_matrix(p, q, 2)
        B = random_matrix(q, r, 3)
        ws = Workspace.for_parallel(alg, steps, p, q, r, A.dtype, B.dtype)
        out = np.empty((p, r))
        for scheme in ("bfs", "hybrid"):
            multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                              pool=pool, threads=2, out=out, workspace=ws)
            assert ws.overflow_allocations == 0, scheme
        assert ws.high_water <= ws.nbytes

    def test_footprints_are_modest(self):
        # DFS stays near the Section 4.1 bound: ~3 block-triples per level,
        # far below one extra full copy of the output per level
        alg = get_algorithm("strassen")
        n = 1024
        fp = dfs_footprint([alg.base_case] * 2, n, n, n)
        assert fp < 2 * n * n * 8
        # BFS pays the R/(MN) per-level factor and must exceed DFS
        assert bfs_footprint(alg, 2, n, n, n) > fp

    def test_schedule_with_skipped_level_fits(self):
        # first level too big to split at these dims: multiply_schedule
        # skips it and runs the next algorithm on the unchanged subproblem,
        # and the footprint simulation must size for that (not undersize)
        sched = [get_algorithm("s336"), get_algorithm("strassen")]
        A = random_matrix(8, 8, 20)
        B = random_matrix(8, 8, 21)
        ws = Workspace.for_recursion([a.base_case for a in sched], 8, 8, 8,
                                     A.dtype, B.dtype)
        out = np.empty((8, 8))
        multiply_schedule(A, B, sched, out=out, workspace=ws)
        assert ws.overflow_allocations == 0
        np.testing.assert_allclose(out, A @ B, atol=1e-10)

    def test_tiny_arena_still_correct(self):
        # a deliberately undersized arena degrades to heap fallback,
        # never to a wrong product
        alg = get_algorithm("strassen")
        A = random_matrix(64, 64, 4)
        B = random_matrix(64, 64, 5)
        ws = Workspace(64)
        out = np.empty((64, 64))
        multiply(A, B, alg, steps=2, out=out, workspace=ws)
        assert ws.overflow_allocations > 0
        np.testing.assert_allclose(out, A @ B, atol=1e-9)


# =========================================================================
# out= contract
# =========================================================================
class TestOutParameter:
    def test_out_returned_and_correct(self):
        alg = get_algorithm("strassen")
        A = random_matrix(40, 40, 0)
        B = random_matrix(40, 40, 1)
        out = np.empty((40, 40))
        got = multiply(A, B, alg, steps=1, out=out)
        assert got is out
        np.testing.assert_allclose(out, A @ B, atol=1e-10)

    def test_out_schedule(self):
        sched = [get_algorithm("strassen"), get_algorithm("s234")]
        A = random_matrix(60, 66, 2)
        B = random_matrix(66, 56, 3)
        out = np.empty((60, 56))
        got = multiply_schedule(A, B, sched, out=out)
        assert got is out
        np.testing.assert_allclose(out, A @ B, atol=1e-9)

    @pytest.mark.parametrize("scheme", ["dfs", "bfs", "hybrid"])
    def test_out_parallel(self, scheme, pool):
        alg = get_algorithm("strassen")
        A = random_matrix(48, 48, 4)
        B = random_matrix(48, 48, 5)
        out = np.empty((48, 48))
        got = multiply_parallel(A, B, alg, steps=1, scheme=scheme,
                                pool=pool, threads=2, out=out)
        assert got is out
        np.testing.assert_allclose(out, A @ B, atol=1e-10)

    def test_out_aliasing_raises(self):
        A = random_matrix(32, 32, 6)
        B = random_matrix(32, 32, 7)
        with pytest.raises(ValueError, match="overlap"):
            check_out(A, A, B)
        with pytest.raises(ValueError, match="overlap"):
            check_out(B, A, B)
        # any view over the operands' memory is aliasing too
        with pytest.raises(ValueError, match="overlap"):
            check_out(A[:, :], A, B)

    def test_out_shape_dtype_writeable_raise(self):
        A = random_matrix(32, 24, 8)
        B = random_matrix(24, 40, 9)
        with pytest.raises(ValueError, match="shape"):
            check_out(np.empty((32, 39)), A, B)
        with pytest.raises(ValueError, match="dtype"):
            check_out(np.empty((32, 40), dtype=np.float32), A, B)
        ro = np.empty((32, 40))
        ro.flags.writeable = False
        with pytest.raises(ValueError, match="writeable"):
            check_out(ro, A, B)
        with pytest.raises(ValueError, match="2-D"):
            check_out(np.empty(32 * 40), A, B)

    def test_multiply_rejects_aliased_out(self):
        alg = get_algorithm("strassen")
        A = random_matrix(32, 32, 10)
        B = random_matrix(32, 32, 11)
        with pytest.raises(ValueError, match="overlap"):
            multiply(A, B, alg, steps=1, out=A)
        with pytest.raises(ValueError, match="overlap"):
            multiply_parallel(A, B, alg, steps=1, scheme="dfs",
                              threads=1, out=B)

    def test_matmul_out(self, tmp_path):
        A = random_matrix(160, 160, 12)
        B = random_matrix(160, 160, 13)
        cache = PlanCache(tmp_path / "plans.json")
        out = np.empty((160, 160))
        got = tuner_matmul(A, B, threads=1, cache=cache, out=out)
        assert got is out
        np.testing.assert_allclose(out, A @ B, atol=1e-10)
        with pytest.raises(ValueError, match="overlap"):
            tuner_matmul(A, B, threads=1, cache=cache, out=A)

    def test_workspace_result_does_not_alias_arena(self):
        # without out=, results must be freshly owned -- a second call may
        # not clobber the first call's return value
        alg = get_algorithm("strassen")
        A = random_matrix(48, 48, 14)
        B = random_matrix(48, 48, 15)
        ws = Workspace.for_recursion([alg.base_case], 48, 48, 48,
                                     A.dtype, B.dtype)
        r1 = multiply(A, B, alg, steps=1, workspace=ws)
        snapshot = r1.copy()
        multiply(B, A, alg, steps=1, workspace=ws)
        np.testing.assert_array_equal(r1, snapshot)


# =========================================================================
# combine_blocks fused path
# =========================================================================
class TestCombineBlocksOut:
    def test_matches_allocating_path_bitwise(self):
        rng = np.random.default_rng(0)
        blocks = [rng.random((9, 7)) for _ in range(4)]
        for coeffs in ([1.0, -1.0, 0.5, 2.0], [0.0, 1.0, 0.0, -1.0],
                       [2.5, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]):
            coeffs = np.array(coeffs)
            ref = combine_blocks(blocks, coeffs)
            out = np.empty((9, 7))
            scratch = np.empty(9 * 7 * 8, dtype=np.uint8)
            got = combine_blocks(blocks, coeffs, out=out, scratch=scratch)
            assert np.array_equal(ref, got)

    def test_single_unit_block_stays_a_view(self):
        blocks = [np.ones((4, 4)), np.zeros((4, 4))]
        out = np.empty((4, 4))
        got = combine_blocks(blocks, np.array([1.0, 0.0]), out=out)
        assert got is blocks[0]  # the Section 3.1 no-copy special case

    def test_all_zero_returns_none(self):
        out = np.empty((4, 4))
        assert combine_blocks([np.ones((4, 4))], np.zeros(1), out=out) is None


# =========================================================================
# bit-for-bit equivalence of arena-backed and allocating paths
# =========================================================================
ALGS = ("strassen", "winograd", "s234", "s333")
DTYPES = (np.float64, np.float32)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(ALGS),
    dtype=st.sampled_from(DTYPES),
    steps=st.integers(1, 2),
    dims=st.tuples(st.integers(24, 72), st.integers(24, 72),
                   st.integers(24, 72)),
    seed=st.integers(0, 2**16),
)
def test_sequential_arena_bit_for_bit(name, dtype, steps, dims, seed):
    alg = get_algorithm(name)
    p, q, r = dims
    rng = np.random.default_rng(seed)
    A = rng.random((p, q)).astype(dtype)
    B = rng.random((q, r)).astype(dtype)
    ref = multiply(A, B, alg, steps=steps)
    ws = Workspace.for_recursion([alg.base_case] * steps, p, q, r,
                                 A.dtype, B.dtype)
    out = np.empty((p, r), dtype=np.result_type(A, B))
    got = multiply(A, B, alg, steps=steps, out=out, workspace=ws)
    assert ws.overflow_allocations == 0
    assert np.array_equal(ref, got)


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(ALGS),
    dtype=st.sampled_from(DTYPES),
    scheme=st.sampled_from(("dfs", "bfs", "hybrid")),
    n=st.integers(24, 64),
    seed=st.integers(0, 2**16),
)
def test_parallel_arena_bit_for_bit(name, dtype, scheme, n, seed):
    alg = get_algorithm(name)
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)
    with WorkerPool(2) as pool:
        ref = multiply_parallel(A, B, alg, steps=1, scheme=scheme,
                                pool=pool, threads=2)
        if scheme == "dfs":
            ws = Workspace.for_recursion([alg.base_case], n, n, n,
                                         A.dtype, B.dtype)
        else:
            ws = Workspace.for_parallel(alg, 1, n, n, n, A.dtype, B.dtype)
        out = np.empty((n, n), dtype=np.result_type(A, B))
        got = multiply_parallel(A, B, alg, steps=1, scheme=scheme,
                                pool=pool, threads=2, out=out, workspace=ws)
    assert ws.overflow_allocations == 0
    assert np.array_equal(ref, got)


# =========================================================================
# steady-state allocation regression (the tracking-allocator tests)
# =========================================================================
class TestSteadyStateAllocations:
    @pytest.mark.parametrize("scheme", ["sequential", "dfs", "hybrid"])
    @pytest.mark.parametrize("n", [512, 515])
    def test_warm_dispatch_is_allocation_free(self, scheme, n, tmp_path):
        """After the first call for a cached shape, ``matmul(A, B, out=C)``
        performs zero allocations larger than 1 MiB (ISSUE 3 acceptance).

        ``n=515`` is deliberately non-divisible: dynamic peeling's
        core-size inner-dimension fix-up must come from the arena too.
        """
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float64", 2,
                  Plan(algorithm="strassen", steps=2, scheme=scheme,
                       threads=2))
        A = random_matrix(n, n, 0)
        B = random_matrix(n, n, 1)
        out = np.empty((n, n))
        reset_workspaces()
        tuner_matmul(A, B, threads=2, cache=cache, out=out)  # builds arena
        with track_allocations() as rep:
            tuner_matmul(A, B, threads=2, cache=cache, out=out)
        assert rep.peak_bytes is not None and rep.peak_bytes < LARGE, scheme
        np.testing.assert_allclose(out, A @ B, atol=1e-8)

    @pytest.mark.parametrize("strategy", ["write_once", "pairwise",
                                          "streaming"])
    def test_warm_sequential_codegen_plan_is_allocation_free(
            self, strategy, tmp_path):
        """Sequential plans are served by the *generated* module (ISSUE 4):
        warm dispatch must write ``out`` directly from the arena, for every
        addition strategy a plan can name."""
        n = 515  # non-divisible: codegen peel fix-ups must be arena-backed
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=2, scheme="sequential",
                       strategy=strategy, threads=1))
        A = random_matrix(n, n, 40)
        B = random_matrix(n, n, 41)
        out = np.empty((n, n))
        reset_workspaces()
        got = tuner_matmul(A, B, threads=1, cache=cache, out=out)
        assert got is out
        with track_allocations() as rep:
            got = tuner_matmul(A, B, threads=1, cache=cache, out=out)
        assert got is out
        assert rep.peak_bytes is not None and rep.peak_bytes < LARGE, strategy
        np.testing.assert_allclose(out, A @ B, atol=1e-8)
        reset_workspaces()

    def test_allocating_path_trips_the_probe(self):
        """Sanity for the tracking allocator itself: the pre-arena path
        allocates well past the threshold, so the probe can tell them
        apart (a regression in the probe would otherwise pass silently)."""
        n = 512
        alg = get_algorithm("strassen")
        A = random_matrix(n, n, 2)
        B = random_matrix(n, n, 3)
        multiply(A, B, alg, steps=2)  # warm numpy internals
        with track_allocations() as rep:
            multiply(A, B, alg, steps=2)
        assert rep.peak_bytes > LARGE

    def test_warm_recursion_call_is_allocation_free(self):
        n = 512
        alg = get_algorithm("strassen")
        A = random_matrix(n, n, 4)
        B = random_matrix(n, n, 5)
        ws = Workspace.for_recursion([alg.base_case] * 2, n, n, n,
                                     A.dtype, B.dtype)
        out = np.empty((n, n))
        multiply(A, B, alg, steps=2, out=out, workspace=ws)
        with track_allocations() as rep:
            multiply(A, B, alg, steps=2, out=out, workspace=ws)
        assert rep.peak_bytes < LARGE
        assert ws.overflow_allocations == 0

    def test_workspace_cache_is_bounded(self, tmp_path):
        from repro.tuner.dispatch import WORKSPACE_CACHE_SIZE, _workspaces
        from repro.tuner.dispatch import workspace_for

        reset_workspaces()
        plan = Plan(algorithm="strassen", steps=1, scheme="sequential",
                    threads=1)
        for i in range(WORKSPACE_CACHE_SIZE + 4):
            workspace_for(plan, 128 + 2 * i, 128, 128, "float64", "float64")
        assert len(_workspaces) == WORKSPACE_CACHE_SIZE
        reset_workspaces()

    def test_workspace_for_dgemm_is_none(self):
        from repro.tuner.dispatch import workspace_for

        assert workspace_for(Plan(threads=1), 64, 64, 64,
                             "float64", "float64") is None

    def test_concurrent_matmul_same_shape_is_correct(self, tmp_path):
        """Arenas are keyed per thread: two dispatchers hammering the same
        cached shape must not corrupt each other's temporaries."""
        from concurrent.futures import ThreadPoolExecutor

        n = 192
        cache = PlanCache(tmp_path / "plans.json")
        cache.put(n, n, n, "float64", 1,
                  Plan(algorithm="strassen", steps=2, scheme="sequential",
                       threads=1))
        A = random_matrix(n, n, 30)
        B = random_matrix(n, n, 31)
        expected = A @ B
        reset_workspaces()

        def hammer(_):
            for _ in range(5):
                C = tuner_matmul(A, B, threads=1, cache=cache)
                if not np.allclose(C, expected, atol=1e-9):
                    return False
            return True

        with ThreadPoolExecutor(4) as ex:
            results = list(ex.map(hammer, range(4)))
        assert all(results)
        reset_workspaces()
