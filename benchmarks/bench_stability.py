"""Extension bench (paper Section 6): empirical numerical stability.

Not a table in the paper's evaluation -- Section 6 explicitly defers it to
the framework's "rapid empirical testing".  We regenerate that testing:
theoretical growth factors next to measured error at depth 1/2 for the
catalog, plus the APA cliff.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.core.stability import measure_error_growth, stability_factors

NAMES = ["strassen", "winograd", "hk223", "s233", "s234", "s244", "s333",
         "s334", "bini322", "schonhage333"]


def test_stability_table(benchmark):
    rows = []
    for name in NAMES:
        alg = get_algorithm(name)
        f = stability_factors(alg)
        m = measure_error_growth(alg, n=216, steps=(1, 2), seed=7)
        rows.append((name, f.emax, m.rel_errors[0], m.rel_errors[1]))

    bench_once(benchmark, lambda: measure_error_growth(
        get_algorithm("strassen"), n=216, steps=(1,), seed=7))

    print("\n== Stability: theoretical growth vs measured error ==")
    print(f"{'algorithm':<14} {'emax':>10} {'err @1 step':>12} {'err @2 steps':>13}")
    for name, emax, e1, e2 in rows:
        print(f"{name:<14} {emax:>10.1f} {e1:>12.2e} {e2:>13.2e}")

    exact = [r for r in rows if not get_algorithm(r[0]).apa]
    apa = [r for r in rows if get_algorithm(r[0]).apa]
    worst_exact = max(r[3] for r in exact)
    best_apa = min(r[2] for r in apa)
    print(f"worst exact error {worst_exact:.2e} << best APA error "
          f"{best_apa:.2e}: {'PASS' if worst_exact < best_apa else 'MISS'}")
    assert worst_exact < 1e-9
