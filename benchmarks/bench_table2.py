"""Table 2: the algorithm catalog -- ranks, classical multiplies, and
multiplication speedup per recursive step; ours next to the paper's."""

from conftest import bench_once

from repro.algorithms import get_algorithm, table2
from repro.bench.metrics import median_time
from repro.codegen import compile_algorithm
from repro.bench.workloads import square
from repro.parallel import blas


def test_table2_print(benchmark):
    rows = table2()

    def render():
        lines = []
        lines.append(f"{'algorithm':<14} {'base':<9} {'rank':>4} {'classical':>9} "
                     f"{'speedup/step':>12} {'paper rank':>10}  provenance")
        for e in rows:
            m, k, n = e.base_case
            paper = str(e.paper_rank) if e.paper_rank else "-"
            lines.append(
                f"{e.name:<14} <{m},{k},{n}>{'':<3} {e.rank:>4} "
                f"{e.classical_rank:>9} {e.speedup_per_step:>11.0%} "
                f"{paper:>10}  {e.provenance}"
            )
        return "\n".join(lines)

    out = bench_once(benchmark, render)
    print("\n== Table 2 (ours vs paper) ==")
    print(out)
    # the searched subset must hit the paper ranks exactly
    hits = {e.base_case: e.rank for e in rows if not e.apa}
    for bc, rank in [((2, 2, 2), 7), ((2, 3, 3), 15), ((2, 3, 4), 20),
                     ((2, 4, 4), 26), ((3, 3, 3), 23)]:
        assert hits[bc] == rank


def test_speedup_per_step_is_real(benchmark):
    """One recursive step of Strassen on a flat-zone problem really is
    faster than the classical call (the premise of Table 2's last column)."""
    wl = square(1024)
    A, B = wl.matrices()
    f = compile_algorithm(get_algorithm("strassen"))

    with blas.blas_threads(1):
        t_fast = median_time(lambda: f(A, B, steps=1), trials=3)
        t_gemm = median_time(lambda: A @ B, trials=3)
    bench_once(benchmark, lambda: f(A, B, steps=1))
    print(f"\nstrassen 1 step: {t_fast:.4f}s, dgemm: {t_gemm:.4f}s, "
          f"speedup {t_gemm / t_fast:.3f} (flop-bound ideal 1.14)")
    assert t_fast > 0 and t_gemm > 0
