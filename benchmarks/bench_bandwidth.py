"""Section 4.5: the shared-memory bandwidth bottleneck.

The paper's argument: gemm scales near-perfectly with cores, bandwidth
(STREAM) far worse (~5x on 24 cores), so the additions of fast algorithms
lose relative ground in parallel.  We measure both scalings on this node
and print the parallel-efficiency gap plus its downstream effect: the
addition/multiplication time ratio for one Strassen step, serial vs
parallel.
"""

from conftest import LARGE_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import median_time
from repro.bench.workloads import scaled, square
from repro.parallel import blas
from repro.parallel.add import measure_stream
from repro.parallel.pool import parallel_combine


def test_bandwidth_vs_gemm_scaling(benchmark, pool):
    counts = sorted({1, LARGE_CORES})
    stream = measure_stream(pool, counts, size_mb=48)

    n = scaled(1024)
    A, B = square(n).matrices()
    gemm_times = {}
    for t in counts:
        with blas.blas_threads(t):
            gemm_times[t] = median_time(lambda: A @ B, trials=3)
    gemm_speedup = gemm_times[1] / gemm_times[counts[-1]]
    bw_speedup = stream.speedup()[-1]

    bench_once(benchmark, lambda: measure_stream(pool, [LARGE_CORES],
                                                 size_mb=16))
    print("\n== Section 4.5: scaling of gemm vs bandwidth ==")
    print(f"{'threads':>8} {'STREAM GiB/s':>13} {'gemm seconds':>13}")
    for i, t in enumerate(counts):
        print(f"{t:>8} {stream.bandwidth_gib_s[i]:>13.2f} "
              f"{gemm_times[t]:>13.4f}")
    print(f"gemm speedup {gemm_speedup:.2f}x vs bandwidth speedup "
          f"{bw_speedup:.2f}x on {counts[-1]} cores")
    print("paper: gemm ~100% parallel efficiency, additions ~20% "
          "(5x bandwidth on 24 cores)")
    assert stream.bandwidth_gib_s[0] > 0


def test_addition_share_grows_in_parallel(benchmark, pool):
    """Time one Strassen step's S/T/C additions vs its 7 multiplies,
    sequentially and with all cores: the addition share must not shrink
    (that is the scalability impediment)."""
    from repro.util.matrices import block_views

    alg = get_algorithm("strassen")
    n = scaled(1536)
    A, B = square(n).matrices()
    blocksA = block_views(A, 2, 2)
    import numpy as np

    S = np.empty_like(blocksA[0])

    def adds_serial():
        for r in range(alg.rank):
            col = alg.U[:, r]
            nz = col.nonzero()[0]
            if len(nz) > 1:
                np.copyto(S, blocksA[nz[0]])
                for i in nz[1:]:
                    np.add(S, blocksA[i], out=S)

    def adds_parallel():
        for r in range(alg.rank):
            col = alg.U[:, r]
            if (col != 0).sum() > 1:
                parallel_combine(pool, S, blocksA, col)

    half = blocksA[0]
    with blas.blas_threads(1):
        t_mul_1 = median_time(lambda: half @ half, trials=3)
    with blas.blas_threads(LARGE_CORES):
        t_mul_p = median_time(lambda: half @ half, trials=3)
    t_add_1 = median_time(adds_serial, trials=3)
    t_add_p = median_time(adds_parallel, trials=3)

    bench_once(benchmark, adds_parallel)
    ratio_1 = t_add_1 / t_mul_1
    ratio_p = t_add_p / t_mul_p
    print("\n== addition/multiplication time ratio (one Strassen level) ==")
    print(f"serial:   adds {t_add_1:.4f}s / mul {t_mul_1:.4f}s = {ratio_1:.2f}")
    print(f"parallel: adds {t_add_p:.4f}s / mul {t_mul_p:.4f}s = {ratio_p:.2f}")
    verdict = "PASS" if ratio_p > 0.8 * ratio_1 else "MISS"
    print(f"paper-shape check: addition share does not improve in parallel: "
          f"{verdict}")
    assert t_add_1 > 0 and t_add_p > 0
