"""Ablation (Section 3.4): recursion depth vs problem size, and the
measured-curve cutoff rule.

Sweeps steps 0..3 for Strassen over sizes straddling the dgemm ramp-up;
the best depth should grow with N, and ``recommended_steps`` driven by the
measured curve should be within one step of the empirical optimum.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.machine import measure_gemm_curve, recommended_steps
from repro.bench.metrics import median_time
from repro.bench.workloads import scaled, square
from repro.codegen import compile_algorithm
from repro.parallel import blas

SIZES = [scaled(n) for n in (256, 512, 1024, 2048)]


def test_cutoff_rule(benchmark):
    f = compile_algorithm(get_algorithm("strassen"))
    curve = measure_gemm_curve([scaled(x) for x in (64, 128, 256, 512, 1024)],
                               threads=1, trials=2)
    rows = []
    with blas.blas_threads(1):
        for n in SIZES:
            A, B = square(n).matrices()
            times = {s: median_time(lambda: f(A, B, steps=s), trials=3)
                     for s in range(4)}
            best = min(times, key=times.get)
            rec = recommended_steps(curve, n, 2, 1 / 7, max_steps=3)
            rows.append((n, times, best, rec))

    A, B = square(SIZES[-1]).matrices()
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: f(A, B, steps=1))

    print("\n== Ablation: recursion depth (Strassen, sequential) ==")
    print(f"{'N':>6} {'steps0':>9} {'steps1':>9} {'steps2':>9} {'steps3':>9}"
          f" {'best':>5} {'rule':>5}")
    agree = 0
    for n, times, best, rec in rows:
        print(f"{n:>6} " + " ".join(f"{times[s]:>9.4f}" for s in range(4))
              + f" {best:>5} {rec:>5}")
        agree += abs(best - rec) <= 1
    print(f"cutoff rule within one step of empirical best: {agree}/{len(rows)}")
    assert agree >= len(rows) // 2
