"""Figure 5: sequential performance of the full catalog.

Three square panels plus the two rectangular panels (outer-product
N x K x N and tall-skinny N x K x K).  Printed verdicts check the paper's
claims: fast algorithms beat dgemm at large N; Strassen is hardest to beat
on squares; shape-matched algorithms win on rectangles.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.runner import run_sequential, winners_by_workload
from repro.bench.workloads import (
    fig5_outer_sweep,
    fig5_square_sweep,
    fig5_ts_sweep,
)
from repro.codegen import compile_algorithm
from repro.parallel import blas


def _algs(names):
    d = {"dgemm": None}
    for n in names:
        d[n] = get_algorithm(n)
    return d


PANEL1 = ["strassen", "bini322", "schonhage333", "s422", "s323", "s332",
          "s522", "s252"]
PANEL2 = ["strassen", "s322", "s324", "s423", "s342", "s333", "s424", "s234"]
PANEL3 = ["strassen", "s442", "s433", "s343", "s336", "s363", "s633"]
RECT = ["strassen", "s424", "s433", "s323", "s423", "bini322", "schonhage333"]


def test_fig5_square_panel1(benchmark):
    rows = run_sequential(_algs(PANEL1), fig5_square_sweep()[-3:],
                          step_options=(1, 2), trials=3,
                          title="Figure 5 square panel 1 (sequential)")
    w = winners_by_workload(rows)
    print(f"winners: {w}")
    bench_once(benchmark, lambda: len(rows))
    assert rows


def test_fig5_square_panel2(benchmark):
    rows = run_sequential(_algs(PANEL2), fig5_square_sweep()[-3:],
                          step_options=(1, 2), trials=3,
                          title="Figure 5 square panel 2 (sequential)")
    print(f"winners: {winners_by_workload(rows)}")
    bench_once(benchmark, lambda: len(rows))
    assert rows


def test_fig5_square_panel3(benchmark):
    rows = run_sequential(_algs(PANEL3), fig5_square_sweep()[-3:],
                          step_options=(1, 2), trials=3,
                          title="Figure 5 square panel 3 (sequential)")
    print(f"winners: {winners_by_workload(rows)}")
    bench_once(benchmark, lambda: len(rows))
    assert rows


def test_fig5_outer(benchmark):
    """N x K x N: the paper's '<4,2,4> and <3,2,3> match the shape and win
    over Strassen' panel."""
    rows = run_sequential(_algs(RECT), fig5_outer_sweep()[-3:],
                          step_options=(1, 2), trials=3,
                          title="Figure 5 bottom-left: N x K x N (sequential)")
    w = winners_by_workload(rows)
    print(f"winners: {w}")
    largest = rows[-len(RECT) - 1:]
    by_name = {r.algorithm: r.gflops for r in largest}
    if "s424" in by_name and "strassen" in by_name:
        verdict = "PASS" if by_name["s424"] > by_name["strassen"] else "MISS"
        print(f"paper-shape check: <4,2,4> > strassen on outer shape: {verdict}")
    bench_once(benchmark, lambda: len(rows))
    assert rows


def test_fig5_ts(benchmark):
    """N x K x K: the paper's '<4,3,3> and <4,2,3> match the shape' panel."""
    rows = run_sequential(_algs(RECT), fig5_ts_sweep()[-2:],
                          step_options=(1, 2), trials=3,
                          title="Figure 5 bottom-right: N x K x K (sequential)")
    print(f"winners: {winners_by_workload(rows)}")
    bench_once(benchmark, lambda: len(rows))
    assert rows


def test_fig5_strassen_speedup_summary(benchmark):
    """Paper: ~20% sequential speedup over MKL on large squares.  We print
    the measured ratio at our largest square size."""
    from repro.bench.metrics import median_time
    from repro.bench.workloads import scaled, square

    n = scaled(2048)
    A, B = square(n).matrices()
    f = compile_algorithm(get_algorithm("strassen"))
    with blas.blas_threads(1):
        t_fast = min(median_time(lambda: f(A, B, steps=s), trials=3)
                     for s in (1, 2, 3))
        t_gemm = median_time(lambda: A @ B, trials=3)
    bench_once(benchmark, lambda: None)
    print(f"\nstrassen vs dgemm at N={n}: speedup {t_gemm / t_fast:.3f} "
          f"(paper: ~1.2 at N~8000 on Edison)")
    assert t_fast > 0
