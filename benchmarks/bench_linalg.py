"""Extension bench (paper §6): fast matmul inside LAPACK-style drivers.

The paper's closing discussion proposes pushing fast algorithms into
higher-level dense linear algebra.  This bench measures how much of the
fast-vs-classical gemm speedup survives inside three drivers with very
different gemm fractions:

- triangular inverse  (~100% of flops are kernel products),
- TRSM with a square right-hand side (~100%, but half-size products),
- blocked LU          (~1 − O(b/n) of flops in trailing updates),

each run with the vendor-BLAS kernel and with a Strassen kernel.  The
printed ``transfer`` column is (driver speedup) / (raw gemm speedup at
the same size) — the paper's thesis predicts transfer ≈ gemm-fraction.
Also prints backward errors so the numerical price is visible alongside
the time.
"""

import numpy as np
from conftest import bench_once

from repro.bench.metrics import median_time
from repro.bench.workloads import scaled
from repro.linalg import MatmulKernel, cholesky, invert_triangular, lu_factor, solve_triangular
from repro.linalg.cholesky import cholesky_error
from repro.linalg.lu import lu_error
from repro.parallel import blas

N = scaled(1024)
BLOCK = max(64, scaled(128))
RNG = np.random.default_rng(54)


def _kernels():
    classical = MatmulKernel()
    fast = MatmulKernel(algorithm="strassen", steps=2, min_dim=BLOCK)
    return classical, fast


def _gemm_speedup(n):
    """Raw fast-vs-BLAS speedup on one n×n product (the transfer baseline)."""
    classical, fast = _kernels()
    A, B = RNG.standard_normal((n, n)), RNG.standard_normal((n, n))
    t_c = median_time(lambda: classical(A, B), trials=3)
    t_f = median_time(lambda: fast(A, B), trials=3)
    return t_c / t_f


def test_linalg_transfer(benchmark):
    classical, fast = _kernels()
    n = N
    T = np.tril(RNG.standard_normal((n, n))) + n * np.eye(n)
    B = RNG.standard_normal((n, n))
    A = RNG.standard_normal((n, n)) + n * np.eye(n)
    SPD = A @ A.T / n + n * np.eye(n)

    drivers = {
        "trinv": (lambda k: invert_triangular(T, kernel=k, base_size=BLOCK),
                  lambda out: float(np.linalg.norm(T @ out - np.eye(n)) / n)),
        "trsm": (lambda k: solve_triangular(T, B, kernel=k, base_size=BLOCK),
                 lambda out: float(np.linalg.norm(T @ out - B)
                                   / np.linalg.norm(B))),
        "lu": (lambda k: lu_factor(A, kernel=k, block=BLOCK),
               lambda out: lu_error(A, out)),
        "chol": (lambda k: cholesky(SPD, kernel=k, block=BLOCK),
                 lambda out: cholesky_error(SPD, out)),
    }

    with blas.blas_threads(1):
        gemm_sp = _gemm_speedup(n)
        rows = []
        for name, (run, err) in drivers.items():
            t_c = median_time(lambda: run(classical), trials=3)
            t_f = median_time(lambda: run(fast), trials=3)
            e_c = err(run(classical))
            e_f = err(run(fast))
            sp = t_c / t_f
            rows.append((name, t_c, t_f, sp, sp / gemm_sp, e_c, e_f))

        bench_once(benchmark, lambda: lu_factor(A, kernel=fast, block=BLOCK))

    print(f"\n== §6 extension: fast matmul inside factorizations "
          f"(n={n}, block={BLOCK}, raw gemm speedup {gemm_sp:.3f}x) ==")
    print(f"{'driver':>6} {'blas(s)':>9} {'strassen(s)':>12} {'speedup':>8}"
          f" {'transfer':>9} {'err(blas)':>10} {'err(fast)':>10}")
    for name, t_c, t_f, sp, tr, e_c, e_f in rows:
        print(f"{name:>6} {t_c:>9.4f} {t_f:>12.4f} {sp:>8.3f} {tr:>9.2f}"
              f" {e_c:>10.2e} {e_f:>10.2e}")

    # qualitative checks, robust to machine noise:
    # every driver stays numerically sane under the fast kernel ...
    for name, *_rest, e_c, e_f in rows:
        assert e_f < 1e-6, (name, e_f)
    # ... and when the raw gemm speedup is real (>5%), the gemm-dominated
    # drivers must inherit a measurable part of it
    if gemm_sp > 1.05:
        by = {r[0]: r for r in rows}
        assert by["trinv"][3] > 1.0 or by["trsm"][3] > 1.0


def test_fast_fraction_model(benchmark):
    """Audit where the flops go: measured fast-path fraction per driver
    vs the 1 − O(b/n) model for LU."""
    n = scaled(768)
    b = max(48, scaled(96))
    A = RNG.standard_normal((n, n)) + n * np.eye(n)
    k = MatmulKernel(algorithm="strassen", steps=1, min_dim=b, counting=True)
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: lu_factor(A, kernel=k, block=b))
    frac = k.fast_fraction()
    # of the flops that reach the kernel (trailing updates + any trsm
    # updates above min_dim), nearly all should take the fast path; the
    # panel factorization and small solves never reach the kernel at all
    print(f"\nLU: fraction of kernel-routed flops on the fast path: "
          f"{frac:.3f} (n={n}, block={b})")
    assert frac > 0.45
