"""Native C chains vs NumPy addition strategies (extends Fig. 2 / §3.2).

The paper's generated C++ fuses every addition chain into one pass over
memory.  Our default Python backend approximates this with NumPy's
in-place ufuncs (one pass per operand pair).  This bench measures what
the fused compiled kernels buy on top, for the same two algorithm/shape
pairs Fig. 2 uses: ⟨4,2,4⟩ on the outer-product shape and ⟨4,2,3⟩ on
squares — plus Strassen as the reference algorithm.

Expected ordering (write counts per §3.2, constants improved by fusion):
    c-chains <= write_once < pairwise      (time per multiply)
with the gap growing with the nnz of the factors, since the chain cost
is pure memory traffic.
"""

import numpy as np
import pytest
from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import scaled
from repro.codegen import cbackend, compile_algorithm
from repro.parallel import blas

if not cbackend.available():
    pytest.skip("no C compiler for the native chain backend",
                allow_module_level=True)

RNG = np.random.default_rng(99)
CASES = [
    # (algorithm, P, Q, R, steps)
    ("strassen", scaled(1536), scaled(1536), scaled(1536), 2),
    ("s424", scaled(1664), scaled(416), scaled(1664), 1),
    ("s423", scaled(1248), scaled(1248), scaled(1248), 1),
]


def _time_variants(name, p, q, r, steps):
    alg = get_algorithm(name)
    A = RNG.standard_normal((p, q))
    B = RNG.standard_normal((q, r))
    py = compile_algorithm(alg, strategy="write_once")
    pw = compile_algorithm(alg, strategy="pairwise")
    cc = cbackend.compile_chains(name)
    cc_cse = cbackend.compile_chains(name, cse=True)
    with blas.blas_threads(1):
        t = {
            "blas": median_time(lambda: A @ B, trials=3),
            "pairwise": median_time(lambda: pw(A, B, steps=steps), trials=3),
            "write_once": median_time(lambda: py(A, B, steps=steps), trials=3),
            "c-chains": median_time(lambda: cc(A, B, steps=steps), trials=3),
            "c-chains+cse": median_time(lambda: cc_cse(A, B, steps=steps),
                                        trials=3),
        }
    return t


def test_native_chains_vs_numpy_strategies(benchmark):
    rows = []
    for name, p, q, r, steps in CASES:
        rows.append((name, p, q, r, steps, _time_variants(name, p, q, r, steps)))

    name, p, q, r, steps, _t = rows[0]
    A = RNG.standard_normal((p, q))
    B = RNG.standard_normal((q, r))
    cc = cbackend.compile_chains(name)
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: cc(A, B, steps=steps))

    print("\n== Native C chains vs NumPy strategies (Fig. 2 extension) ==")
    hdr = f"{'algorithm':>10} {'shape':>16} {'steps':>5}"
    variants = ["blas", "pairwise", "write_once", "c-chains", "c-chains+cse"]
    print(hdr + "".join(f" {v:>13}" for v in variants) + "   (eff.GFLOPS)")
    ok_order = 0
    for name, p, q, r, steps, t in rows:
        gf = {k: effective_gflops(p, q, r, v) for k, v in t.items()}
        print(f"{name:>10} {f'{p}x{q}x{r}':>16} {steps:>5}"
              + "".join(f" {gf[v]:>13.2f}" for v in variants))
        ok_order += t["c-chains"] <= t["write_once"] * 1.05
    # fused chains should essentially never lose to the ufunc write-once
    assert ok_order >= len(rows) - 1, "fused C chains slower than numpy "\
        "write-once on most cases — investigate"
