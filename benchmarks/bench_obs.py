"""Telemetry overhead benchmark: the instrumented dispatch path vs bare.

The repro.obs design contract is that observability is (a) *free* when
disabled -- the hot path pays one ``telemetry.enabled()`` branch -- and
(b) *cheap* when enabled: spans on ``time.perf_counter_ns``, counter
bumps under one lock, and a bounded dispatch ring.  This benchmark holds
the contract to a number: the median warm-dispatch call with telemetry
enabled must stay within ``max_obs_overhead_ratio`` (checked in at
``benchmarks/workspace_threshold.json``, 1.03 = 3%) of the same call
with telemetry disabled.

Methodology: a pre-seeded in-memory plan cache makes every call a pure
warm dispatch (cache hit, reused arena, reused pool -- the steady state
PR 3/4 built); enabled/disabled trials are interleaved so background
drift charges both paths equally; the ratio is the min over a few
retries because a single noisy scheduling event should not fail CI.

The report also embeds a full telemetry snapshot from a short multicore
run (dfs at min(4, cores) workers) so the CI artifact doubles as a
live sample of the span/counter schema downstream dashboards consume.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] \
        [--json BENCH_obs.json] [--max-ratio R]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_workspace import interleaved_medians
from repro import obs
from repro.parallel.pool import available_cores
from repro.tuner import PlanCache, matmul, reset_workspaces
from repro.tuner.space import Plan
from repro.util.matrices import random_matrix

THRESHOLD_FILE = Path(__file__).parent / "workspace_threshold.json"
RETRIES = 3


def _seeded_cache(tmpdir_free_path: Path, n: int, threads: int) -> PlanCache:
    """In-memory plan cache holding one dfs plan for the benchmark shape,
    so every timed call resolves source=cache with zero tuning."""
    cache = PlanCache(tmpdir_free_path)
    plan = Plan(algorithm="strassen", steps=2, scheme="dfs", threads=threads)
    cache.put(n, n, n, "float64", threads, plan, seconds=0.01, gflops=1.0)
    return cache


def measure_overhead(n: int, trials: int) -> dict:
    """Median warm-dispatch seconds with telemetry off vs on (min ratio
    over RETRIES interleaved rounds)."""
    cache = _seeded_cache(Path("/nonexistent/bench_obs_plans.json"), n, 1)
    A = random_matrix(n, n, 0)
    B = random_matrix(n, n, 1)
    out = np.empty((n, n))

    def call():
        matmul(A, B, threads=1, cache=cache, out=out)

    def run_disabled():
        obs.disable()
        call()

    def run_enabled():
        obs.enable()
        call()

    # warm both paths: plan cache, workspace arena, worker pool, BLAS
    obs.disable()
    call()
    obs.enable()
    call()

    best = None
    for _ in range(RETRIES):
        t_off, t_on = interleaved_medians(run_disabled, run_enabled, trials)
        ratio = t_on / t_off if t_off > 0 else float("inf")
        row = {"seconds_disabled": t_off, "seconds_enabled": t_on,
               "overhead_ratio": ratio}
        if best is None or row["overhead_ratio"] < best["overhead_ratio"]:
            best = row
    obs.disable()
    obs.reset()
    best.update({"n": n, "trials": trials, "retries": RETRIES})
    return best


def multicore_snapshot(n: int, calls: int) -> dict:
    """Run a few instrumented multicore dispatches and return the full
    telemetry snapshot -- the artifact's sample of the metric schema."""
    threads = min(4, available_cores())
    cache = _seeded_cache(Path("/nonexistent/bench_obs_plans.json"),
                          n, threads)
    A = random_matrix(n, n, 2)
    B = random_matrix(n, n, 3)
    out = np.empty((n, n))

    obs.disable()
    obs.reset()
    obs.enable()
    for _ in range(calls):
        matmul(A, B, threads=threads, cache=cache, out=out)
    snap = obs.snapshot(reset_after=True)
    obs.disable()
    snap["_threads"] = threads
    snap["_calls"] = calls
    return snap


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller size / fewer trials (the CI smoke job)")
    ap.add_argument("--json", type=Path, default=Path("BENCH_obs.json"))
    ap.add_argument("--max-ratio", type=float, default=None,
                    help="fail if enabled/disabled median ratio exceeds "
                         "this (default: benchmarks/workspace_threshold"
                         ".json max_obs_overhead_ratio)")
    args = ap.parse_args(argv)

    threshold = args.max_ratio
    if threshold is None:
        try:
            threshold = json.loads(THRESHOLD_FILE.read_text())[
                "max_obs_overhead_ratio"]
        except (OSError, KeyError, ValueError):
            threshold = 1.03

    n = 192 if args.quick else 256
    trials = 31 if args.quick else 101

    reset_workspaces()
    row = measure_overhead(n, trials)
    print(f"warm dispatch n={n}: disabled "
          f"{row['seconds_disabled'] * 1e3:.3f} ms/call, enabled "
          f"{row['seconds_enabled'] * 1e3:.3f} ms/call -> overhead "
          f"x{row['overhead_ratio']:.4f} (gate x{threshold:.2f})")

    snap = multicore_snapshot(n, calls=3 if args.quick else 10)
    spans = ", ".join(sorted({s["name"] for s in snap["spans"]}))
    print(f"multicore snapshot ({snap['_threads']} workers): "
          f"{len(snap['counters'])} counters, {len(snap['spans'])} span "
          f"series [{spans}]")

    ok = row["overhead_ratio"] <= threshold
    report = {
        "benchmark": "obs-overhead",
        "quick": args.quick,
        "max_obs_overhead_ratio": threshold,
        "overhead": row,
        "pass": ok,
        "multicore_snapshot": snap,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    args.json.write_text(json.dumps(report, indent=1))
    print(f"wrote {args.json}; overhead x{row['overhead_ratio']:.4f} vs "
          f"gate x{threshold:.2f} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
