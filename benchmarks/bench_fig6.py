"""Figure 6: parallel performance on square problems, small vs all cores.

Paper findings: with few cores (no bandwidth bottleneck) fast algorithms
beat the vendor gemm like in the sequential case; at full core count the
margin shrinks but Strassen / <3,3,2> / <4,3,3> remain competitive.
"""

import pytest
from conftest import LARGE_CORES, SMALL_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.runner import run_parallel, winners_by_workload
from repro.bench.workloads import scaled, square

ALGS = ["strassen", "s422", "s332", "s423", "s333", "s424", "s433",
        "bini322", "schonhage333"]


def _algs():
    d = {"dgemm": None}
    for n in ALGS:
        d[n] = get_algorithm(n)
    return d


@pytest.mark.parametrize("cores,schemes", [
    (SMALL_CORES, ("bfs", "hybrid")),
    (LARGE_CORES, ("dfs", "hybrid")),
])
def test_fig6_square(benchmark, cores, schemes):
    wls = [square(scaled(n)) for n in (1024, 1536)]
    rows = run_parallel(
        _algs(), wls, cores=cores, schemes=schemes, step_options=(1, 2),
        trials=2, title=f"Figure 6: square, {cores} core(s)",
    )
    w = winners_by_workload(rows)
    print(f"winners: {w}")
    by_name = {r.algorithm: r.gflops for r in rows if r.workload == wls[-1].label}
    verdict = "PASS" if by_name["strassen"] > 0.85 * by_name["dgemm"] else "MISS"
    print(f"paper-shape check: strassen competitive with dgemm "
          f"({by_name['strassen'] / by_name['dgemm']:.3f}x): {verdict}")
    A, B = wls[0].matrices()
    from repro.parallel import multiply_parallel

    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("strassen"), steps=1, scheme="hybrid",
        threads=cores))
    assert rows
