"""Ablation (Sections 3.2 / 4.2): memory footprint of strategies & schemes.

Two of the paper's memory claims, measured with tracemalloc:

- streaming additions materialize all R temporaries at once (R/2-fold the
  write-once pair) -- Section 3.2;
- BFS needs ~R/(MN) times the output memory per recursion level for the
  M_r intermediates -- Section 4.2.
"""

import tracemalloc

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.workloads import scaled, square
from repro.codegen import compile_algorithm
from repro.core.cost import bfs_memory_factor, temporaries_memory
from repro.parallel import WorkerPool, multiply_parallel


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_strategy_memory(benchmark):
    alg = get_algorithm("s424")
    n = scaled(512)
    A, B = square(n).matrices()
    fs = {s: compile_algorithm(alg, s) for s in
          ("pairwise", "write_once", "streaming")}
    peaks = {s: _peak_bytes(lambda f=f: f(A, B, steps=1))
             for s, f in fs.items()}
    bench_once(benchmark, lambda: fs["write_once"](A, B, steps=1))

    print(f"\n== Memory: addition strategies, <4,2,4> 1 step, N={n} ==")
    print(f"{'strategy':<12} {'peak MiB':>10} {'model temporaries':>18}")
    for s, p in peaks.items():
        print(f"{s:<12} {p / 2**20:>10.1f} {temporaries_memory(alg, s):>18}")
    verdict = "PASS" if peaks["streaming"] > peaks["write_once"] else "MISS"
    print(f"paper-shape check: streaming needs more temporary memory: {verdict}")
    assert peaks["streaming"] > 0


def test_scheme_memory(benchmark):
    alg = get_algorithm("strassen")
    n = scaled(512)
    A, B = square(n).matrices()
    with WorkerPool(2) as pool:
        peak_dfs = _peak_bytes(
            lambda: multiply_parallel(A, B, alg, steps=1, scheme="dfs",
                                      pool=pool))
        peak_bfs = _peak_bytes(
            lambda: multiply_parallel(A, B, alg, steps=1, scheme="bfs",
                                      pool=pool))
        bench_once(benchmark, lambda: multiply_parallel(
            A, B, alg, steps=1, scheme="bfs", pool=pool))

    print(f"\n== Memory: parallel schemes, Strassen 1 step, N={n} ==")
    print(f"dfs peak {peak_dfs / 2**20:.1f} MiB, bfs peak "
          f"{peak_bfs / 2**20:.1f} MiB "
          f"(model: BFS holds ~R/(MN) = {bfs_memory_factor(alg):.2f}x C "
          f"in M_r intermediates)")
    verdict = "PASS" if peak_bfs > peak_dfs else "MISS"
    print(f"paper-shape check: BFS needs more memory than DFS: {verdict}")
    assert peak_bfs > 0
