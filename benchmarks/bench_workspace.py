"""Workspace-arena benchmark: allocated bytes per call + warm throughput.

Measures, for repeated mid-size products on the paper's two profitable
parallel schemes (``dfs``, ``hybrid``) plus the sequential interpreter:

- **allocated bytes per call** on the historical allocating path vs the
  warm arena-backed path (``out=`` + ``workspace=``), probed with the
  tracemalloc tracking allocator of :mod:`repro.core.workspace`;
- **repeated-call throughput** of both paths (median seconds/call), i.e.
  the steady-state win of eliminating allocator traffic and page faults
  from the recursion/schedule/dispatch hot loops.

``--codegen`` switches the grid to the *generated* sequential modules
(ISSUE 4): one row per addition strategy (write_once / pairwise /
streaming), allocating ``multiply(A, B)`` vs the warm arena path
``multiply(A, B, out=, workspace=)`` with the
``workspace.codegen_footprint``-sized arena -- what ``tuner.dispatch``
serves for sequential plans.

Emits ``BENCH_workspace.json`` and exits non-zero when the warm path's
allocated bytes regress above the checked-in threshold
(``benchmarks/workspace_threshold.json``) -- the CI smoke job runs
``--quick`` (both grids) on every push.

Usage::

    PYTHONPATH=src python benchmarks/bench_workspace.py [--quick] \
        [--codegen] [--json BENCH_workspace.json] [--max-warm-bytes N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import get_algorithm
from repro.core.recursion import multiply
from repro.core.workspace import Workspace, track_allocations
from repro.parallel import blas
from repro.parallel.pool import WorkerPool, available_cores
from repro.parallel.schedules import multiply_parallel
from repro.util.matrices import random_matrix

THRESHOLD_FILE = Path(__file__).parent / "workspace_threshold.json"

#: (n, dtype) grid: the tuner's bread-and-butter mid-size repeated matmuls;
#: the odd sizes exercise dynamic peeling (the fix-up products must come
#: from the arena too, or non-divisible shapes regress silently)
FULL_SIZES = (1024, 1025, 1536)
QUICK_SIZES = (256, 257)
DTYPES = ("float32", "float64")
SCHEMES = ("sequential", "dfs", "hybrid")
CODEGEN_STRATEGIES = ("write_once", "pairwise", "streaming")
STEPS = 2


def interleaved_medians(fn_a, fn_b, trials: int) -> tuple[float, float]:
    """Median seconds/call of two paths, trials interleaved A/B/A/B so
    background-load drift hits both equally (sequential blocks would
    charge the drift to whichever ran second)."""
    ta: list[float] = []
    tb: list[float] = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_a()
        ta.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        tb.append(time.perf_counter() - t0)
    ta.sort()
    tb.sort()
    return ta[len(ta) // 2], tb[len(tb) // 2]


def bench_config(scheme: str, dtype: str, n: int, steps: int,
                 pool: WorkerPool, threads: int, trials: int) -> dict:
    alg = get_algorithm("strassen")
    A = random_matrix(n, n, 0, dtype=np.dtype(dtype))
    B = random_matrix(n, n, 1, dtype=np.dtype(dtype))
    out = np.empty((n, n), dtype=np.result_type(A, B))

    if scheme == "sequential":
        ws = Workspace.for_recursion([alg.base_case] * steps, n, n, n,
                                     A.dtype, B.dtype)

        def run_alloc():
            with blas.blas_threads(threads):
                multiply(A, B, alg, steps=steps)

        def run_warm():
            with blas.blas_threads(threads):
                multiply(A, B, alg, steps=steps, out=out, workspace=ws)
    else:
        if scheme == "dfs":
            ws = Workspace.for_recursion([alg.base_case] * steps, n, n, n,
                                         A.dtype, B.dtype)
        else:
            ws = Workspace.for_parallel(alg, steps, n, n, n,
                                        A.dtype, B.dtype)

        def run_alloc():
            multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                              pool=pool, threads=threads)

        def run_warm():
            multiply_parallel(A, B, alg, steps=steps, scheme=scheme,
                              pool=pool, threads=threads, out=out,
                              workspace=ws)

    return _measure(scheme, dtype, n, steps, alg, ws, run_alloc, run_warm,
                    trials)


def _measure(scheme, dtype, n, steps, alg, ws, run_alloc, run_warm,
             trials) -> dict:
    run_alloc()  # warm numpy/BLAS internals
    run_warm()   # warm the arena (first call sizes nothing, it's prebuilt)

    with track_allocations() as rep_alloc:
        run_alloc()
    with track_allocations() as rep_warm:
        run_warm()
    t_alloc, t_warm = interleaved_medians(run_alloc, run_warm, trials)

    return {
        "scheme": scheme,
        "dtype": dtype,
        "n": n,
        "steps": steps,
        "algorithm": alg.name,
        "alloc_bytes_per_call": rep_alloc.peak_bytes,
        "warm_bytes_per_call": rep_warm.peak_bytes,
        "seconds_allocating": t_alloc,
        "seconds_warm": t_warm,
        "speedup": t_alloc / t_warm if t_warm > 0 else float("inf"),
        "arena_bytes": ws.nbytes,
        "arena_overflows": ws.overflow_allocations,
    }


def bench_codegen(strategy: str, dtype: str, n: int, steps: int,
                  threads: int, trials: int) -> dict:
    """One row for a generated sequential module: allocating ``multiply``
    vs the warm ``out=``/``workspace=`` arena path dispatch serves."""
    from repro.codegen import compile_algorithm

    alg = get_algorithm("strassen")
    A = random_matrix(n, n, 0, dtype=np.dtype(dtype))
    B = random_matrix(n, n, 1, dtype=np.dtype(dtype))
    out = np.empty((n, n), dtype=np.result_type(A, B))
    fn = compile_algorithm(alg, strategy=strategy)
    ws = Workspace.for_codegen(alg, strategy, False, (n, n, n),
                               A.dtype, steps, dtype_b=B.dtype)

    def run_alloc():
        with blas.blas_threads(threads):
            fn(A, B, steps=steps)

    def run_warm():
        with blas.blas_threads(threads):
            fn(A, B, steps=steps, out=out, workspace=ws)

    return _measure(f"codegen-{strategy}", dtype, n, steps, alg, ws,
                    run_alloc, run_warm, trials)


def _print_row(row: dict) -> None:
    print(f"{row['scheme']:18s} {row['dtype']:8s} n={row['n']:5d}  "
          f"alloc {row['alloc_bytes_per_call'] / 1e6:8.2f} MB/call "
          f"-> warm {row['warm_bytes_per_call'] / 1e6:8.3f} MB/call  "
          f"| {row['seconds_allocating'] * 1e3:8.2f} ms "
          f"-> {row['seconds_warm'] * 1e3:8.2f} ms "
          f"(x{row['speedup']:.2f})")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes / few trials (the CI smoke job)")
    ap.add_argument("--codegen", action="store_true",
                    help="benchmark the generated sequential modules "
                         "(one row per addition strategy) instead of the "
                         "scheme grid")
    ap.add_argument("--json", type=Path, default=Path("BENCH_workspace.json"))
    ap.add_argument("--max-warm-bytes", type=int, default=None,
                    help="fail if any warm path allocates more than this "
                         "(default: benchmarks/workspace_threshold.json)")
    args = ap.parse_args(argv)

    threshold = args.max_warm_bytes
    if threshold is None:
        try:
            threshold = json.loads(THRESHOLD_FILE.read_text())[
                "max_warm_alloc_bytes"]
        except (OSError, KeyError, ValueError):
            threshold = 1 << 20

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    trials = 5 if args.quick else 9
    threads = min(4, available_cores())

    rows = []
    if args.codegen:
        for n in sizes:
            for dtype in DTYPES:
                for strategy in CODEGEN_STRATEGIES:
                    row = bench_codegen(strategy, dtype, n, STEPS,
                                        threads, trials)
                    rows.append(row)
                    _print_row(row)
    else:
        with WorkerPool(threads) as pool:
            for n in sizes:
                for dtype in DTYPES:
                    for scheme in SCHEMES:
                        row = bench_config(scheme, dtype, n, STEPS, pool,
                                           threads, trials)
                        rows.append(row)
                        _print_row(row)

    worst_warm = max(r["warm_bytes_per_call"] for r in rows)
    ok = worst_warm <= threshold and all(
        r["arena_overflows"] == 0 for r in rows)
    report = {
        "benchmark": "workspace-codegen" if args.codegen else "workspace",
        "quick": args.quick,
        "threads": threads,
        "max_warm_alloc_bytes": threshold,
        "worst_warm_bytes": worst_warm,
        "pass": ok,
        "rows": rows,
    }
    args.json.write_text(json.dumps(report, indent=1))
    print(f"\nwrote {args.json}; worst warm path {worst_warm / 1e6:.3f} MB "
          f"vs threshold {threshold / 1e6:.3f} MB -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
