"""Figure 1: sequential effective performance on N x N x N -- generated
Strassen vs the vendor dgemm vs a tuned Strassen-Winograd.

Paper claim: the generated code easily outperforms MKL for large N and is
competitive with the hand-tuned Winograd implementation.  Our "tuned"
stand-in is the Winograd variant with CSE (fewer additions, reused
intermediates), the generated baseline is plain Strassen write-once.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import scaled, square
from repro.codegen import compile_algorithm
from repro.parallel import blas

SIZES = [scaled(n) for n in (512, 768, 1024, 1536, 2048)]


def test_fig1(benchmark):
    strassen = compile_algorithm(get_algorithm("strassen"), "write_once", False)
    winograd = compile_algorithm(get_algorithm("winograd"), "write_once", True)

    rows = []
    with blas.blas_threads(1):
        for n in SIZES:
            A, B = square(n).matrices()
            t_mkl = median_time(lambda: A @ B, trials=3)
            t_str = min(
                median_time(lambda: strassen(A, B, steps=s), trials=3)
                for s in (1, 2)
            )
            t_win = min(
                median_time(lambda: winograd(A, B, steps=s), trials=3)
                for s in (1, 2)
            )
            rows.append((n, effective_gflops(n, n, n, t_mkl),
                         effective_gflops(n, n, n, t_str),
                         effective_gflops(n, n, n, t_win)))

    A, B = square(SIZES[-1]).matrices()
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: strassen(A, B, steps=2))

    print("\n== Figure 1: sequential N x N x N (effective GFLOPS) ==")
    print(f"{'N':>6} {'dgemm':>10} {'strassen':>10} {'winograd+cse':>13}")
    for n, g_mkl, g_str, g_win in rows:
        print(f"{n:>6} {g_mkl:>10.2f} {g_str:>10.2f} {g_win:>13.2f}")
    big = rows[-1]
    print(f"paper-shape check: strassen beats dgemm at N={big[0]}: "
          f"{'PASS' if big[2] > big[1] else 'MISS'} "
          f"({big[2] / big[1]:.3f}x)")
    assert len(rows) == len(SIZES)
