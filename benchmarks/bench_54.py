"""Section 5.2: the composed <54,54,54> algorithm (asymptotically fastest
implementation, omega ~= 2.775 at the paper's rank-40 <3,3,6>).

Paper conclusion reproduced: despite the best exponent, the composed
algorithm loses to Strassen and to the vendor gemm at practical sizes --
the addition overhead swamps the multiplication savings.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import scaled, square
from repro.codegen import compile_algorithm
from repro.core.cost import composed_exponent
from repro.core.recursion import multiply_schedule
from repro.parallel import blas


def test_composed_54(benchmark):
    s336 = get_algorithm("s336")
    sched = [s336, get_algorithm("s363"), get_algorithm("s633")]
    omega = composed_exponent([(3, 3, 6), (3, 6, 3), (6, 3, 3)],
                              [s336.rank] * 3)

    n = scaled(1080)  # divisible by 54 twice... 1080 = 54 * 20
    A, B = square(n).matrices()
    strassen = compile_algorithm(get_algorithm("strassen"))
    with blas.blas_threads(1):
        t_gemm = median_time(lambda: A @ B, trials=3)
        t_str = median_time(lambda: strassen(A, B, steps=2), trials=3)
        t_54_1 = median_time(lambda: multiply_schedule(A, B, sched[:1]), trials=3)
        t_54_3 = median_time(lambda: multiply_schedule(A, B, sched), trials=3)

    g = lambda t: effective_gflops(n, n, n, t)  # noqa: E731
    print(f"\n== Section 5.2: composed <54,54,54> at N={n} ==")
    print(f"rank per level: {s336.rank} (paper: 40) -> omega = {omega:.4f} "
          f"(paper: 2.775)")
    print(f"{'variant':<28} {'eff. GFLOPS':>12}")
    print(f"{'dgemm':<28} {g(t_gemm):>12.2f}")
    print(f"{'strassen (2 steps)':<28} {g(t_str):>12.2f}")
    print(f"{'<3,3,6> one level':<28} {g(t_54_1):>12.2f}")
    print(f"{'<54,54,54> (full 3 levels)':<28} {g(t_54_3):>12.2f}")
    verdict = "PASS" if g(t_54_3) < max(g(t_str), g(t_gemm)) else "MISS"
    print(f"paper-shape check: composed algorithm impractical at modest N: "
          f"{verdict}")

    with blas.blas_threads(1):
        bench_once(benchmark, lambda: multiply_schedule(A, B, sched))
    assert t_54_3 > 0
