"""Tuner dispatch vs fixed algorithm choices across the paper's regimes.

The paper's Figures 5-6 show that the best algorithm depends on shape: no
fixed choice wins the square, outer-product ``N x k x N`` and tall-skinny
``N x k x k`` regimes simultaneously.  This benchmark makes the systems
claim for ``repro.tuner``: after one tuning pass, the dispatcher

- is never slower than the *worst* fixed single-algorithm choice (it
  would have to mis-rank every candidate for that), and
- beats the classical dgemm baseline on at least one regime.

Run with ``-s`` to see the per-shape dispatch table.
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import median_time
from repro.bench.workloads import scaled
from repro.codegen import compile_algorithm
from repro.parallel import blas
from repro.tuner import PlanCache, execute_plan, get_plan, tune
from repro.util.matrices import random_matrix

#: fixed single-algorithm contenders (each applied to *every* shape)
FIXED = ("strassen", "s424", "s433")

#: one workload per paper regime: square, outer product, tall-skinny
SHAPES = (
    ("square", scaled(1024), scaled(1024), scaled(1024)),
    ("outer NxkxN", scaled(1024), scaled(416), scaled(1024)),
    ("ts Nxkxk", scaled(2048), scaled(416), scaled(416)),
)

TRIALS = 3


def _time_fixed(name, A, B):
    fn = compile_algorithm(get_algorithm(name))
    return min(
        median_time(lambda: fn(A, B, steps=s), trials=TRIALS)
        for s in (1, 2)
    )


def test_dispatch_vs_fixed(benchmark, tmp_path):
    cache = PlanCache(tmp_path / "plans.json")
    with blas.blas_threads(1):
        tune([(p, q, r) for _, p, q, r in SHAPES], cache=cache,
             budget_s=20.0, trials=TRIALS, persist=False, verbose=True)

        print(f"\n{'regime':<14} {'dgemm':>8} "
              + " ".join(f"{n:>10}" for n in FIXED)
              + f" {'dispatch':>10}  chosen plan")
        never_slower_than_worst = True
        beats_dgemm_somewhere = False
        for label, p, q, r in SHAPES:
            A = random_matrix(p, q, 0)
            B = random_matrix(q, r, 1)
            t_gemm = median_time(lambda: A @ B, trials=TRIALS)
            t_fixed = {n: _time_fixed(n, A, B) for n in FIXED}
            plan, source = get_plan(p, q, r, cache=cache)
            t_auto = median_time(lambda: execute_plan(plan, A, B),
                                 trials=TRIALS)
            print(f"{label:<14} {t_gemm:8.3f} "
                  + " ".join(f"{t_fixed[n]:10.3f}" for n in FIXED)
                  + f" {t_auto:10.3f}  {plan.describe()} [{source}]")
            # generous 10% timing noise allowance on a shared box
            if t_auto > 1.1 * max(t_fixed.values()):
                never_slower_than_worst = False
            if t_auto < t_gemm:
                beats_dgemm_somewhere = True

        print(f"\ndispatch never slower than the worst fixed choice: "
              f"{'PASS' if never_slower_than_worst else 'MISS'}")
        print(f"dispatch beats classical on >= 1 regime: "
              f"{'PASS' if beats_dgemm_somewhere else 'MISS'}")
    bench_once(benchmark, lambda: None)
    assert never_slower_than_worst


def test_online_policy_amortization(benchmark, tmp_path):
    """The systems claim for ``tune="online"``: a stream of real calls pays
    a *bounded* exploration overhead (the shortlist is each run once or
    twice), converges to a cached plan, and from then on dispatches at
    cache-hit cost -- no offline tuning pass ever ran."""
    from repro.tuner import OnlineTunePolicy, matmul

    n = scaled(512)
    A = random_matrix(n, n, 0)
    B = random_matrix(n, n, 1)
    cache = PlanCache(tmp_path / "plans.json")
    policy = OnlineTunePolicy(shortlist=3, min_trials=1, epsilon=1.0,
                              persist=False)
    with blas.blas_threads(1):
        t_explore = []
        calls = 0
        for calls in range(1, 16):
            t_explore.append(
                median_time(lambda: matmul(A, B, threads=1, cache=cache,
                                           tune=policy),
                            trials=1, warmup=0))
            if policy.converged(n, n, n, "float64", 1):
                break
        t_settled = median_time(
            lambda: matmul(A, B, threads=1, cache=cache, tune=policy),
            trials=5)
        t_direct = median_time(lambda: A @ B, trials=5)
    plan, source = get_plan(n, n, n, threads=1, cache=cache)
    print(f"\nN={n}: converged after {calls} online call(s); "
          f"exploration total {sum(t_explore):.4f}s, settled "
          f"{t_settled:.4f}s/call vs dgemm {t_direct:.4f}s "
          f"-> {plan.describe()} [{source}]")
    bench_once(benchmark, lambda: None)
    assert policy.converged(n, n, n, "float64", 1)
    assert source == "cache"
    # settled dispatch must stay in the same league as plain dgemm
    assert t_settled < 5 * t_direct


def test_dispatch_overhead(benchmark, tmp_path):
    """Cache-hit dispatch adds negligible overhead over running the plan
    directly (the hot path is a dict lookup + one dataclass decode)."""
    cache = PlanCache(tmp_path / "plans.json")
    n = scaled(512)
    A = random_matrix(n, n, 0)
    B = random_matrix(n, n, 1)
    from repro.tuner import matmul, tune_shape

    tune_shape(n, n, n, threads=1, budget_s=5.0, trials=1, cache=cache,
               persist=False)
    with blas.blas_threads(1):
        t_direct = median_time(lambda: A @ B, trials=5)
        t_auto = median_time(
            lambda: matmul(A, B, threads=1, cache=cache), trials=5)
    print(f"\nN={n}: dgemm {t_direct:.4f}s, dispatched {t_auto:.4f}s "
          f"(x{t_auto / t_direct:.2f})")
    bench_once(benchmark, lambda: None)
    assert t_auto < 5 * t_direct
