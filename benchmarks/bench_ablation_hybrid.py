"""Ablation (Section 4.3): HYBRID vs the alternative sub-group hybrid.

The alternative assigns leftover leaf multiplies to disjoint groups of
P' < P threads instead of running them one-by-one on all P threads.  The
paper expects it to reduce the hard-to-scale small multiplies but to add
load-balancing complexity; we measure both at the full core count.
"""

from conftest import LARGE_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import median_time
from repro.bench.workloads import scaled, square
from repro.parallel import multiply_parallel

ALGS = ["strassen", "s333"]


def test_hybrid_variants(benchmark, pool):
    n = scaled(1024)
    A, B = square(n).matrices()
    print(f"\n== Ablation: hybrid remainder strategy at N={n}, "
          f"P={LARGE_CORES} ==")
    print(f"{'algorithm':<10} {'hybrid':>10} {'subgroup':>10}")
    results = {}
    for name in ALGS:
        alg = get_algorithm(name)
        t_h = median_time(
            lambda: multiply_parallel(A, B, alg, steps=1, scheme="hybrid",
                                      pool=pool, threads=LARGE_CORES),
            trials=3,
        )
        t_s = median_time(
            lambda: multiply_parallel(A, B, alg, steps=1,
                                      scheme="hybrid-subgroup", pool=pool,
                                      threads=LARGE_CORES, subgroup=1),
            trials=3,
        )
        results[name] = (t_h, t_s)
        print(f"{name:<10} {t_h:>10.4f} {t_s:>10.4f}")

    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("strassen"), steps=1, scheme="hybrid",
        pool=pool, threads=LARGE_CORES))
    assert all(t > 0 for pair in results.values() for t in pair)
