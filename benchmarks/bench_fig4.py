"""Figure 4: BFS vs DFS vs HYBRID at small and large core counts.

Three panels: Strassen on N x N x N, <4,2,4> on N x K x N, <4,3,3> on
N x K x K.  Paper findings reproduced as printed verdicts: HYBRID wins on
small problems (BFS suffers when P does not divide the task count; with
Strassen's 7 leaf tasks that is nearly always), DFS needs leaves past the
parallel ramp-up.
"""

import pytest
from conftest import LARGE_CORES, SMALL_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import outer, scaled, square, ts_square
from repro.parallel import blas, multiply_parallel

SCHEMES = ("dfs", "bfs", "hybrid")


def _panel(alg_name, workloads, pool, cores, steps_options=(1, 2)):
    alg = get_algorithm(alg_name)
    rows = []
    for wl in workloads:
        A, B = wl.matrices()
        with blas.blas_threads(cores):
            t_gemm = median_time(lambda: A @ B, trials=3)
        per = {"dgemm": effective_gflops(wl.p, wl.q, wl.r, t_gemm) / cores}
        for scheme in SCHEMES:
            sec = min(
                median_time(
                    lambda: multiply_parallel(A, B, alg, steps=s,
                                              scheme=scheme, pool=pool,
                                              threads=cores),
                    trials=3,
                )
                for s in steps_options
            )
            per[scheme] = effective_gflops(wl.p, wl.q, wl.r, sec) / cores
        rows.append((wl, per))
    return rows


def _print(title, cores, rows):
    print(f"\n== Figure 4 panel: {title}, {cores} core(s) "
          f"(eff. GFLOPS/core) ==")
    print(f"{'workload':<16} {'dgemm':>8} {'dfs':>8} {'bfs':>8} {'hybrid':>8}")
    for wl, per in rows:
        print(f"{wl.label:<16} {per['dgemm']:>8.2f} {per['dfs']:>8.2f} "
              f"{per['bfs']:>8.2f} {per['hybrid']:>8.2f}")
    last = rows[-1][1]
    best = max(SCHEMES, key=lambda s: last[s])
    print(f"best scheme at largest size: {best} "
          f"(paper: hybrid/bfs at low cores, hybrid/dfs at high)")


@pytest.mark.parametrize("cores", [SMALL_CORES, LARGE_CORES])
def test_fig4_strassen_square(benchmark, pool, cores):
    wls = [square(scaled(n)) for n in (768, 1536)]
    rows = _panel("strassen", wls, pool, cores)
    _print("Strassen on N x N x N", cores, rows)
    A, B = wls[-1].matrices()
    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("strassen"), steps=1, scheme="hybrid",
        pool=pool, threads=cores))
    assert all(per["hybrid"] > 0 for _, per in rows)


@pytest.mark.parametrize("cores", [LARGE_CORES])
def test_fig4_424_outer(benchmark, pool, cores):
    wls = [outer(scaled(n), scaled(728)) for n in (1024, 1536)]
    rows = _panel("s424", wls, pool, cores)
    _print("<4,2,4> on N x K x N", cores, rows)
    A, B = wls[0].matrices()
    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("s424"), steps=1, scheme="hybrid",
        pool=pool, threads=cores))
    assert rows


@pytest.mark.parametrize("cores", [LARGE_CORES])
def test_fig4_433_ts(benchmark, pool, cores):
    wls = [ts_square(scaled(n), scaled(780)) for n in (2048, 3072)]
    rows = _panel("s433", wls, pool, cores)
    _print("<4,3,3> on N x K x K", cores, rows)
    A, B = wls[0].matrices()
    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("s433"), steps=1, scheme="hybrid",
        pool=pool, threads=cores))
    assert rows
