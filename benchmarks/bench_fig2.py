"""Figure 2: the three matrix-addition strategies x CSE, 1 and 2 steps.

Panels: <4,2,4> on N x K x N (outer-product shape) and <4,2,3> on
N x N x N.  Paper finding: write-once without CSE is the best default;
pairwise is slowest (more reads/writes); CSE can hurt write-once.
"""


from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.bench.metrics import effective_gflops, median_time
from repro.bench.workloads import outer, scaled, square
from repro.codegen import STRATEGIES, compile_algorithm
from repro.parallel import blas

VARIANTS = [(s, c) for s in STRATEGIES for c in (False, True)]


def _sweep(alg_name, workloads, steps_options):
    alg = get_algorithm(alg_name)
    rows = []
    with blas.blas_threads(1):
        for wl in workloads:
            A, B = wl.matrices()
            t_gemm = median_time(lambda: A @ B, trials=3)
            per_variant = {}
            for strategy, cse in VARIANTS:
                f = compile_algorithm(alg, strategy, cse)
                for steps in steps_options:
                    sec = median_time(lambda: f(A, B, steps=steps), trials=3)
                    per_variant[(strategy, cse, steps)] = effective_gflops(
                        wl.p, wl.q, wl.r, sec
                    )
            rows.append((wl, effective_gflops(wl.p, wl.q, wl.r, t_gemm),
                         per_variant))
    return rows


def _print_panel(title, rows, steps_options):
    print(f"\n== Figure 2 panel: {title} ==")
    hdr = f"{'workload':<16} {'dgemm':>8}"
    for s, c in VARIANTS:
        tag = s.replace("_", "-")[:6] + ("+cse" if c else "")
        hdr += f" {tag:>11}"
    for steps in steps_options:
        print(f"-- {steps} recursive step(s) --")
        print(hdr)
        for wl, g_gemm, pv in rows:
            line = f"{wl.label:<16} {g_gemm:>8.2f}"
            for s, c in VARIANTS:
                line += f" {pv[(s, c, steps)]:>11.2f}"
            print(line)


def test_fig2_424_outer(benchmark):
    wls = [outer(scaled(n), scaled(416)) for n in (768, 1280)]
    rows = _sweep("s424", wls, (1, 2))
    _print_panel("<4,2,4> on N x K x N", rows, (1, 2))
    A, B = wls[-1].matrices()
    f = compile_algorithm(get_algorithm("s424"), "write_once", False)
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: f(A, B, steps=1))
    # write-once (no cse) should not be dominated by pairwise variants
    _, _, pv = rows[-1]
    assert pv[("write_once", False, 1)] > 0.5 * pv[("pairwise", False, 1)]


def test_fig2_423_square(benchmark):
    wls = [square(scaled(n)) for n in (768, 1280)]
    rows = _sweep("s423", wls, (1, 2))
    _print_panel("<4,2,3> on N x N x N", rows, (1, 2))
    A, B = wls[-1].matrices()
    f = compile_algorithm(get_algorithm("s423"), "write_once", False)
    with blas.blas_threads(1):
        bench_once(benchmark, lambda: f(A, B, steps=1))
    assert rows
