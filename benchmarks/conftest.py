"""Shared fixtures/helpers for the figure/table benchmark suite.

Every ``bench_*`` file regenerates one paper artifact: it prints the
paper-style rows (run with ``-s`` to see them) and registers at least one
pytest-benchmark timing so ``pytest benchmarks/ --benchmark-only`` gives a
machine-readable summary.  Problem sizes are scaled for a small node; set
``REPRO_BENCH_SCALE`` to rescale (1.0 = defaults documented in
EXPERIMENTS.md, paper sizes are ~4x larger).
"""

from __future__ import annotations

import pytest

from repro.parallel import WorkerPool, available_cores

#: the paper contrasts 6 vs 24 cores; on this node we contrast 1 vs all
SMALL_CORES = 1
LARGE_CORES = max(2, available_cores())


def collect(name):
    """Import hook used by bench files to share result rows in-session."""
    return _RESULTS.setdefault(name, [])


_RESULTS: dict[str, list] = {}


@pytest.fixture(scope="session")
def pool():
    with WorkerPool(LARGE_CORES) as p:
        yield p


@pytest.fixture(scope="session")
def small_pool():
    with WorkerPool(SMALL_CORES) as p:
        yield p


def bench_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark using few, controlled rounds
    (sweeps inside the bench files already take medians)."""
    return benchmark.pedantic(fn, rounds=3, warmup_rounds=1, iterations=1)
