"""Compiled-backend benchmark: the C chain kernels vs the NumPy modules.

Measures warm serving throughput of a ``backend="compiled"`` plan --
``tuner.execute_plan`` driving the fused ``form_S``/``form_T``/``form_C``
C kernels through an arena -- against the *same plan* served by the
generated NumPy-source module, at mid sizes where the addition chains are
a visible share of each multiply (the regime the paper's C++ codegen
targets: one fused pass per chain instead of one NumPy pass per operand
pair).  Both paths run fully warm (compile + arena build land before any
timed call) and write into preallocated destinations, so the measured gap
is exactly the chain-formation traffic the compiled backend eliminates.

Also probes, with the tracking allocator, that a warm compiled call stays
under the per-call byte budget -- the compiled serving path must be as
allocation-free as the NumPy one.

Emits ``BENCH_compiled.json`` and exits non-zero when compiled throughput
drops below ``min_compiled_throughput_ratio`` x the NumPy-source path
(``benchmarks/workspace_threshold.json``) or the warm compiled call
allocates above the byte budget.  Hosts without a C toolchain exit 0 with
a ``"skipped"`` report -- absence of a compiler is a capability, not a
regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled.py [--quick] \
        [--json BENCH_compiled.json] [--min-ratio R]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.codegen import cbackend
from repro.core.workspace import track_allocations
from repro.tuner import Plan, dispatch, measure

THRESHOLD_FILE = Path(__file__).parent / "workspace_threshold.json"

#: the gate's shapes: mid sizes where chain-formation traffic is a
#: visible share of the multiply but the leaf dgemm does not yet drown it
SIZES = (384, 512, 768)
STEPS = 2
DTYPE = "float64"


def interleaved_medians(fn_a, fn_b, trials: int) -> tuple[float, float]:
    """Median seconds/call of two paths, trials interleaved A/B/A/B so
    background-load drift hits both equally."""
    ta: list[float] = []
    tb: list[float] = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_a()
        ta.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        tb.append(time.perf_counter() - t0)
    ta.sort()
    tb.sort()
    return ta[len(ta) // 2], tb[len(tb) // 2]


def bench_size(n: int, trials: int, max_warm_bytes: int) -> dict:
    A, B = measure.tuning_operands(n, n, n, dtype=DTYPE, seed=0)
    plan_cc = Plan(algorithm="strassen", steps=STEPS, scheme="sequential",
                   threads=1, backend="compiled")
    plan_np = dataclasses.replace(plan_cc, backend="numpy")
    C_cc = np.empty((n, n))
    C_np = np.empty((n, n))
    ws_cc = dispatch.build_workspace(plan_cc, n, n, n, A.dtype, B.dtype)
    ws_np = dispatch.build_workspace(plan_np, n, n, n, A.dtype, B.dtype)

    def run_compiled():
        dispatch.execute_plan(plan_cc, A, B, out=C_cc, workspace=ws_cc)

    def run_numpy():
        dispatch.execute_plan(plan_np, A, B, out=C_np, workspace=ws_np)

    # warm both paths: the one-off C compile + dlopen and both arenas
    # land here, never in a timed trial
    run_compiled()
    run_numpy()
    if not np.allclose(C_cc, C_np, atol=1e-8 * n):
        raise AssertionError(f"compiled result diverged at n={n}")

    with track_allocations() as rep_cc:
        run_compiled()
    t_np, t_cc = interleaved_medians(run_numpy, run_compiled, trials)

    return {
        "n": n,
        "steps": STEPS,
        "dtype": DTYPE,
        "plan": plan_cc.describe(),
        "seconds_numpy": t_np,
        "seconds_compiled": t_cc,
        "throughput_ratio": t_np / t_cc if t_cc > 0 else float("inf"),
        "compiled_bytes_per_call": rep_cc.peak_bytes,
        "compiled_overflows": ws_cc.stats()["overflow_allocations"],
        "warm_bytes_ok": rep_cc.peak_bytes <= max_warm_bytes,
    }


def _print_row(row: dict) -> None:
    print(f"n={row['n']:5d}  "
          f"numpy {row['seconds_numpy'] * 1e3:8.2f} ms "
          f"-> compiled {row['seconds_compiled'] * 1e3:8.2f} ms "
          f"(x{row['throughput_ratio']:.2f})  "
          f"warm alloc {row['compiled_bytes_per_call'] / 1e6:.3f} MB  "
          f"[{row['plan']}]")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer trials (the CI smoke job)")
    ap.add_argument("--json", type=Path, default=Path("BENCH_compiled.json"))
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="fail if compiled/numpy throughput drops below "
                         "this (default: benchmarks/workspace_threshold"
                         ".json min_compiled_throughput_ratio)")
    args = ap.parse_args(argv)

    if not cbackend.available():
        report = {"benchmark": "compiled", "skipped": True,
                  "reason": "no working C compiler", "pass": True}
        args.json.write_text(json.dumps(report, indent=1))
        print("no working C compiler; compiled benchmark skipped")
        return 0

    min_ratio = args.min_ratio
    max_warm_bytes = 1 << 20
    try:
        thresholds = json.loads(THRESHOLD_FILE.read_text())
        if min_ratio is None:
            min_ratio = thresholds["min_compiled_throughput_ratio"]
        max_warm_bytes = thresholds.get("max_warm_alloc_bytes",
                                        max_warm_bytes)
    except (OSError, KeyError, ValueError):
        if min_ratio is None:
            min_ratio = 1.0

    trials = 7 if args.quick else 15

    rows = []
    for n in SIZES[:2] if args.quick else SIZES:
        row = bench_size(n, trials, max_warm_bytes)
        rows.append(row)
        _print_row(row)

    worst_ratio = min(r["throughput_ratio"] for r in rows)
    ok = worst_ratio >= min_ratio and all(r["warm_bytes_ok"] for r in rows)
    report = {
        "benchmark": "compiled",
        "quick": args.quick,
        "steps": STEPS,
        "min_compiled_throughput_ratio": min_ratio,
        "max_warm_alloc_bytes": max_warm_bytes,
        "worst_throughput_ratio": worst_ratio,
        "pass": ok,
        "rows": rows,
    }
    args.json.write_text(json.dumps(report, indent=1))
    print(f"\nwrote {args.json}; worst compiled/numpy ratio "
          f"{worst_ratio:.2f}x vs threshold {min_ratio:.2f}x -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
