"""Figure 7: parallel performance on rectangular problems.

Paper findings: at low core counts all fast algorithms beat the vendor
gemm and the shape-matched ones (<3,2,3> on outer product, <4,3,3> on
tall-skinny) lead; at full core count bandwidth makes the classical call
hardest to beat (additions do not scale).
"""

import pytest
from conftest import LARGE_CORES, SMALL_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.runner import run_parallel, winners_by_workload
from repro.bench.workloads import fig7_outer_sweep, fig7_ts_sweep

ALGS = ["strassen", "s424", "s433", "s323", "s423", "bini322", "schonhage333"]


def _algs():
    d = {"dgemm": None}
    for n in ALGS:
        d[n] = get_algorithm(n)
    return d


@pytest.mark.parametrize("cores,schemes", [
    (SMALL_CORES, ("bfs", "hybrid")),
    (LARGE_CORES, ("dfs", "hybrid")),
])
def test_fig7_outer(benchmark, cores, schemes):
    wls = fig7_outer_sweep()[-2:]
    rows = run_parallel(
        _algs(), wls, cores=cores, schemes=schemes, step_options=(1, 2),
        trials=2, title=f"Figure 7: N x K x N, {cores} core(s)",
    )
    print(f"winners: {winners_by_workload(rows)}")
    A, B = wls[0].matrices()
    from repro.parallel import multiply_parallel

    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("s424"), steps=1, scheme="hybrid", threads=cores))
    assert rows


@pytest.mark.parametrize("cores,schemes", [
    (LARGE_CORES, ("dfs", "hybrid")),
])
def test_fig7_ts(benchmark, cores, schemes):
    wls = fig7_ts_sweep()[-2:]
    rows = run_parallel(
        _algs(), wls, cores=cores, schemes=schemes, step_options=(1, 2),
        trials=2, title=f"Figure 7: N x K x K, {cores} core(s)",
    )
    print(f"winners: {winners_by_workload(rows)}")
    A, B = wls[0].matrices()
    from repro.parallel import multiply_parallel

    bench_once(benchmark, lambda: multiply_parallel(
        A, B, get_algorithm("s433"), steps=1, scheme="hybrid", threads=cores))
    assert rows
