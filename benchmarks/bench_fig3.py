"""Figure 3: dgemm ramp-up curves, serial and parallel, three shapes.

Reproduces the machine-model measurement that drives the Section 3.4
cutoff rule: performance ramps up with N and flattens; square problems
flatten higher than fixed-inner-dimension shapes; the parallel curve needs
larger N to flatten.
"""

from conftest import LARGE_CORES, bench_once

from repro.bench.machine import measure_gemm_curve
from repro.bench.workloads import scaled

SIZES = [scaled(n) for n in (128, 256, 512, 768, 1024, 1536)]
FIXED = scaled(208)


def test_fig3_serial(benchmark):
    curves = {
        "N x N x N": measure_gemm_curve(SIZES, threads=1, shape="square"),
        f"N x {FIXED} x N": measure_gemm_curve(SIZES, threads=1, shape="outer",
                                               fixed=FIXED),
        f"N x {FIXED} x {FIXED}": measure_gemm_curve(SIZES, threads=1,
                                                     shape="ts", fixed=FIXED),
    }
    bench_once(benchmark, lambda: measure_gemm_curve([SIZES[-1]], threads=1,
                                                     trials=1))
    print("\n== Figure 3 (left): sequential dgemm GFLOPS ==")
    print(f"{'N':>6} " + " ".join(f"{k:>16}" for k in curves))
    for i, n in enumerate(SIZES):
        print(f"{n:>6} " + " ".join(f"{c.gflops[i]:>16.2f}"
                                    for c in curves.values()))
    sq = curves["N x N x N"]
    print(f"ramp-up flattens (90% of peak) near N = {sq.flat_size()}")
    # square flattens at or above the fixed-dimension shapes' levels
    assert sq.peak >= 0.8 * max(c.peak for c in curves.values())


def test_fig3_parallel(benchmark):
    curves = {
        "N x N x N": measure_gemm_curve(SIZES, threads=LARGE_CORES,
                                        shape="square"),
        f"N x {FIXED} x N": measure_gemm_curve(SIZES, threads=LARGE_CORES,
                                               shape="outer", fixed=FIXED),
    }
    bench_once(benchmark, lambda: measure_gemm_curve([SIZES[-1]],
                                                     threads=LARGE_CORES,
                                                     trials=1))
    print(f"\n== Figure 3 (right): parallel dgemm GFLOPS/core "
          f"({LARGE_CORES} threads) ==")
    print(f"{'N':>6} " + " ".join(f"{k:>16}" for k in curves))
    for i, n in enumerate(SIZES):
        print(f"{n:>6} " + " ".join(f"{c.gflops[i] / LARGE_CORES:>16.2f}"
                                    for c in curves.values()))
    sq = curves["N x N x N"]
    print(f"parallel ramp-up flattens near N = {sq.flat_size()} "
          f"(paper: later than serial)")
    assert all(g > 0 for g in sq.gflops)
