"""Ablation (Section 4.2/4.3): measured load imbalance of BFS vs HYBRID.

Uses the tracing pool to compute per-worker busy time directly.  With
Strassen's 7 leaf tasks on P=2 workers, BFS must show imbalance in the
leaf stage; HYBRID's BFS batch is a multiple of P by construction, so its
leaf-stage imbalance is lower.
"""

from conftest import LARGE_CORES, bench_once

from repro.algorithms import get_algorithm
from repro.bench.workloads import scaled, square
from repro.parallel import multiply_parallel
from repro.parallel.trace import TracedPool


def test_bfs_vs_hybrid_imbalance(benchmark):
    alg = get_algorithm("strassen")
    # floor the size: below ~512 the leaf gemms are so short that the
    # imbalance metric is scheduler noise, not load imbalance
    n = max(scaled(1024), 512)
    A, B = square(n).matrices()

    results = {}
    with TracedPool(LARGE_CORES) as pool:
        for scheme in ("bfs", "hybrid"):
            # median of three traced runs to de-noise tiny-task timings
            runs = []
            for _ in range(3):
                pool.trace.clear()
                pool.label(scheme)
                multiply_parallel(A, B, alg, steps=1, scheme=scheme,
                                  pool=pool, threads=LARGE_CORES)
                tr = pool.trace
                runs.append({
                    "tasks": len(tr.events),
                    "imbalance": tr.imbalance(),
                    "makespan": tr.makespan(),
                })
            runs.sort(key=lambda r: r["imbalance"])
            results[scheme] = runs[len(runs) // 2]
        bench_once(benchmark, lambda: multiply_parallel(
            A, B, alg, steps=1, scheme="hybrid", pool=pool,
            threads=LARGE_CORES))

    print(f"\n== Load balance: Strassen 1 step (7 leaves), P={LARGE_CORES}, "
          f"N={n} ==")
    print(f"{'scheme':<8} {'tasks':>6} {'imbalance':>10} {'makespan s':>11}")
    for scheme, r in results.items():
        print(f"{scheme:<8} {r['tasks']:>6} {r['imbalance']:>10.3f} "
              f"{r['makespan']:>11.4f}")
    print("(imbalance = max worker busy / mean worker busy; 1.0 is perfect."
          " HYBRID's leftover leaf runs on all threads outside the pool,"
          " so its pooled task set is balanced by construction.)")
    assert results["bfs"]["tasks"] >= 14
    # qualitative claim (§4.3): HYBRID's pooled batch is a multiple of P,
    # so its median imbalance must not exceed BFS's by more than the
    # measurement slack on short tasks
    assert results["hybrid"]["imbalance"] <= results["bfs"]["imbalance"] * 2.0
