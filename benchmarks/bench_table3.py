"""Table 3: additions saved by greedy length-2 CSE on S/T formation.

The paper reports counts for its own coefficient representations; ours
differ where our searched factors differ, so we print both and check the
structural invariants (saved >= eliminated, final = original - saved).
"""

from conftest import bench_once

from repro.algorithms import get_algorithm
from repro.codegen.chains import extract_chains
from repro.codegen.cse import table3_row

#: paper's Table 3 rows for reference printing
PAPER = {
    "s333": (97, 70, 18, 27),
    "s424": (189, 138, 25, 51),
    "s432": (96, 72, 13, 24),
    "s433": (164, 125, 26, 39),
    "s522": (53, 43, 7, 10),
}


def test_table3(benchmark):
    def compute():
        rows = {}
        for name in PAPER:
            alg = get_algorithm(name)
            prog = extract_chains(alg)
            rows[name] = table3_row(prog.s_chains, prog.t_chains)
        return rows

    rows = bench_once(benchmark, compute)
    print("\n== Table 3 (CSE on S/T formation) ==")
    print(f"{'base case':<10} {'orig':>6} {'cse':>6} {'elim':>6} {'saved':>6}"
          f"   paper(orig/cse/elim/saved)")
    for name, r in rows.items():
        p = PAPER[name]
        print(f"{name:<10} {r['original']:>6} {r['cse']:>6} "
              f"{r['subexpressions_eliminated']:>6} {r['additions_saved']:>6}"
              f"   {p[0]}/{p[1]}/{p[2]}/{p[3]}")
    for r in rows.values():
        assert r["cse"] == r["original"] - r["additions_saved"]
        assert r["additions_saved"] >= r["subexpressions_eliminated"] >= 0
