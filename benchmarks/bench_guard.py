"""Guard overhead benchmark: guarded warm dispatch vs unguarded.

The repro.guard design contract mirrors repro.obs: resilience must be
(a) *free* when off -- unguarded dispatch pays one ``resolve_guard``
call returning ``None`` -- and (b) *cheap* when on with the default
config: the guarded warm path adds a try/except bracket, a sampled
NaN/Inf scan over ``sample_rows`` rows, and a quarantine-ledger lookup
that short-circuits on an empty ledger.  This benchmark holds that to a
number: the median warm-dispatch call with ``guard=True`` must stay
within ``max_guard_overhead_ratio`` (checked in at
``benchmarks/workspace_threshold.json``, 1.03 = 3%) of the same call
unguarded.

Methodology matches bench_obs.py: a pre-seeded in-memory plan cache
makes every call a pure warm dispatch; guarded/unguarded trials are
interleaved so background drift charges both paths equally; the ratio is
the min over a few retries because one noisy scheduling event should not
fail CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_guard.py [--quick] \
        [--json BENCH_guard.json] [--max-ratio R]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_workspace import interleaved_medians
from repro import obs
from repro.tuner import PlanCache, matmul, reset_workspaces
from repro.tuner.space import Plan
from repro.util.matrices import random_matrix

THRESHOLD_FILE = Path(__file__).parent / "workspace_threshold.json"
RETRIES = 3


def _seeded_cache(n: int, threads: int) -> PlanCache:
    """In-memory plan cache holding one dfs plan for the benchmark shape,
    so every call resolves source=cache with zero tuning."""
    cache = PlanCache(Path("/nonexistent/bench_guard_plans.json"))
    plan = Plan(algorithm="strassen", steps=2, scheme="dfs", threads=threads)
    cache.put(n, n, n, "float64", threads, plan, seconds=0.01, gflops=1.0)
    return cache


def measure_overhead(n: int, trials: int) -> dict:
    """Median warm-dispatch seconds unguarded vs guard=True (min ratio
    over RETRIES interleaved rounds); telemetry off for both."""
    cache = _seeded_cache(n, 1)
    A = random_matrix(n, n, 0)
    B = random_matrix(n, n, 1)
    out = np.empty((n, n))

    def run_unguarded():
        matmul(A, B, threads=1, cache=cache, out=out, guard=False)

    def run_guarded():
        matmul(A, B, threads=1, cache=cache, out=out, guard=True)

    # warm both paths: plan cache, workspace arena, BLAS
    obs.disable()
    run_unguarded()
    run_guarded()

    best = None
    for _ in range(RETRIES):
        t_off, t_on = interleaved_medians(run_unguarded, run_guarded,
                                          trials)
        ratio = t_on / t_off if t_off > 0 else float("inf")
        row = {"seconds_unguarded": t_off, "seconds_guarded": t_on,
               "overhead_ratio": ratio}
        if best is None or row["overhead_ratio"] < best["overhead_ratio"]:
            best = row
    best.update({"n": n, "trials": trials, "retries": RETRIES})
    return best


def fallback_sample(n: int) -> dict:
    """One guarded call with a persistent injected plan failure: the
    artifact's proof that the chain degrades to a bit-equal classical
    product (and how much a full degradation costs)."""
    from repro.guard import faults

    cache = _seeded_cache(n, 1)
    A = random_matrix(n, n, 2)
    B = random_matrix(n, n, 3)
    ref = np.matmul(A, B)
    t0 = time.perf_counter()
    with faults.inject("plan.raise"):
        C = matmul(A, B, threads=1, cache=cache, guard=True)
    seconds = time.perf_counter() - t0
    return {
        "n": n,
        "seconds": seconds,
        "bit_equal": bool(np.array_equal(C, ref)),
        "faults_fired": faults.fired("plan.raise"),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller size / fewer trials (the CI smoke job)")
    ap.add_argument("--json", type=Path, default=Path("BENCH_guard.json"))
    ap.add_argument("--max-ratio", type=float, default=None,
                    help="fail if guarded/unguarded median ratio exceeds "
                         "this (default: benchmarks/workspace_threshold"
                         ".json max_guard_overhead_ratio)")
    args = ap.parse_args(argv)

    threshold = args.max_ratio
    if threshold is None:
        try:
            threshold = json.loads(THRESHOLD_FILE.read_text())[
                "max_guard_overhead_ratio"]
        except (OSError, KeyError, ValueError):
            threshold = 1.03

    n = 192 if args.quick else 256
    trials = 31 if args.quick else 101

    reset_workspaces()
    row = measure_overhead(n, trials)
    print(f"warm dispatch n={n}: unguarded "
          f"{row['seconds_unguarded'] * 1e3:.3f} ms/call, guarded "
          f"{row['seconds_guarded'] * 1e3:.3f} ms/call -> overhead "
          f"x{row['overhead_ratio']:.4f} (gate x{threshold:.2f})")

    sample = fallback_sample(n)
    print(f"fallback sample (persistent plan.raise): degraded call "
          f"{sample['seconds'] * 1e3:.3f} ms, bit-equal "
          f"{sample['bit_equal']}, faults fired {sample['faults_fired']}")

    ok = row["overhead_ratio"] <= threshold and sample["bit_equal"]
    report = {
        "benchmark": "guard-overhead",
        "quick": args.quick,
        "max_guard_overhead_ratio": threshold,
        "overhead": row,
        "fallback_sample": sample,
        "pass": ok,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    args.json.write_text(json.dumps(report, indent=1))
    print(f"wrote {args.json}; overhead x{row['overhead_ratio']:.4f} vs "
          f"gate x{threshold:.2f} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
