"""Batched-dispatch benchmark: one plan/arena/pool for a whole batch.

Measures warm batched throughput -- ``repro.tuner.matmul_batched`` over a
stack of same-shape products -- against a Python loop of per-call
``repro.tuner.matmul`` on the same operands, at the small/mid shapes
where per-call overhead (plan resolution, arena lookup, thread fan-out)
is a visible share of each multiply (Section 3.4's below-the-knee
regime).  Both paths run fully warm: the per-call plan is tuned and
cached first, the batch mode is tuned once via ``tune="auto"``, and both
sides write into preallocated destinations, so the measured gap is
exactly the amortization the batched entry point exists to provide.

Also probes, with the tracking allocator, that a warm batched call stays
under the per-call byte budget -- one plan lookup + one arena (or one
per-worker arena pool) for the *whole batch*, allocation-free end to end.

Emits ``BENCH_batched.json`` and exits non-zero when batched throughput
drops below ``min_batched_throughput_ratio`` x the looped path
(``benchmarks/workspace_threshold.json``) or the warm batched call
allocates above the byte budget -- the CI bench-smoke job runs
``--quick`` on every push.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py [--quick] \
        [--json BENCH_batched.json] [--min-ratio R]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.workspace import track_allocations
from repro.parallel.pool import available_cores
from repro.tuner import PlanCache, batched, dispatch, measure

THRESHOLD_FILE = Path(__file__).parent / "workspace_threshold.json"

#: the gate's shapes: square n below / at the float64 trivial boundary and
#: just above it -- the regime where per-call overhead dominates and
#: batching must win
SIZES = (128, 256)
BATCH = 16
DTYPE = "float64"


def interleaved_medians(fn_a, fn_b, trials: int) -> tuple[float, float]:
    """Median seconds/call of two paths, trials interleaved A/B/A/B so
    background-load drift hits both equally."""
    ta: list[float] = []
    tb: list[float] = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_a()
        ta.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        tb.append(time.perf_counter() - t0)
    ta.sort()
    tb.sort()
    return ta[len(ta) // 2], tb[len(tb) // 2]


def bench_size(n: int, batch: int, threads: int, trials: int,
               cache: PlanCache, max_warm_bytes: int) -> dict:
    A, B = measure.batch_operands(n, n, n, batch, dtype=DTYPE, seed=0)
    C_batched = np.empty((batch, n, n), dtype=np.result_type(A, B))
    C_looped = np.empty((batch, n, n), dtype=np.result_type(A, B))
    a_list, b_list = list(A), list(B)
    c_list = list(C_looped)

    # prime both paths: per-call plan measured + cached, batch mode
    # measured + cached, arenas and pools built
    measure.tune_shape(n, n, n, dtype=DTYPE, threads=threads, trials=1,
                       budget_s=10.0, cache=cache, persist=False)
    batched.matmul_batched(A, B, out=C_batched, threads=threads,
                           cache=cache, tune="auto")

    def run_looped():
        for a, b, c in zip(a_list, b_list, c_list):
            dispatch.matmul(a, b, out=c, threads=threads, cache=cache)

    def run_batched():
        batched.matmul_batched(A, B, out=C_batched, threads=threads,
                               cache=cache)

    run_looped()
    run_batched()
    if not np.allclose(C_batched, C_looped, atol=1e-8 * n):
        raise AssertionError(f"batched result diverged at n={n}")

    with track_allocations() as rep_batched:
        run_batched()
    with track_allocations() as rep_looped:
        run_looped()
    t_looped, t_batched = interleaved_medians(run_looped, run_batched,
                                              trials)

    bplan, source = batched.get_batch_plan(n, n, n, batch, dtype=DTYPE,
                                           threads=threads, cache=cache)
    return {
        "n": n,
        "batch": batch,
        "dtype": DTYPE,
        "threads": threads,
        "batch_plan": bplan.describe(),
        "batch_source": source,
        "seconds_looped": t_looped,
        "seconds_batched": t_batched,
        "throughput_ratio": t_looped / t_batched if t_batched > 0
                            else float("inf"),
        "looped_bytes_per_batch": rep_looped.peak_bytes,
        "batched_bytes_per_batch": rep_batched.peak_bytes,
        "warm_bytes_ok": rep_batched.peak_bytes <= max_warm_bytes,
    }


def _print_row(row: dict) -> None:
    print(f"n={row['n']:5d} batch={row['batch']:3d}  "
          f"looped {row['seconds_looped'] * 1e3:8.2f} ms "
          f"-> batched {row['seconds_batched'] * 1e3:8.2f} ms "
          f"(x{row['throughput_ratio']:.2f})  "
          f"warm alloc {row['batched_bytes_per_batch'] / 1e6:.3f} MB  "
          f"[{row['batch_plan']}]")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer trials (the CI smoke job)")
    ap.add_argument("--json", type=Path, default=Path("BENCH_batched.json"))
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="fail if batched/looped throughput drops below "
                         "this (default: benchmarks/workspace_threshold"
                         ".json min_batched_throughput_ratio)")
    args = ap.parse_args(argv)

    min_ratio = args.min_ratio
    max_warm_bytes = 1 << 20
    try:
        thresholds = json.loads(THRESHOLD_FILE.read_text())
        if min_ratio is None:
            min_ratio = thresholds["min_batched_throughput_ratio"]
        max_warm_bytes = thresholds.get("max_warm_alloc_bytes",
                                        max_warm_bytes)
    except (OSError, KeyError, ValueError):
        if min_ratio is None:
            min_ratio = 1.0

    trials = 7 if args.quick else 15
    threads = min(4, available_cores())

    rows = []
    with tempfile.TemporaryDirectory() as td:
        cache = PlanCache(os.path.join(td, "plan_cache.json"))
        for n in SIZES:
            row = bench_size(n, BATCH, threads, trials, cache,
                             max_warm_bytes)
            rows.append(row)
            _print_row(row)

    worst_ratio = min(r["throughput_ratio"] for r in rows)
    ok = worst_ratio >= min_ratio and all(r["warm_bytes_ok"] for r in rows)
    report = {
        "benchmark": "batched",
        "quick": args.quick,
        "threads": threads,
        "batch": BATCH,
        "min_batched_throughput_ratio": min_ratio,
        "max_warm_alloc_bytes": max_warm_bytes,
        "worst_throughput_ratio": worst_ratio,
        "pass": ok,
        "rows": rows,
    }
    args.json.write_text(json.dumps(report, indent=1))
    print(f"\nwrote {args.json}; worst batched/looped ratio "
          f"{worst_ratio:.2f}x vs threshold {min_ratio:.2f}x -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
